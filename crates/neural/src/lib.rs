//! A small, pure-Rust neural-network library for the CLAP reproduction.
//!
//! The paper's models are deliberately compact (Table 6): a single-layer
//! GRU with 32 hidden units for connection-state prediction, and a 7-layer
//! dense autoencoder (345 → 40 → 345) for context-profile density
//! estimation. This crate implements exactly the pieces those models need,
//! from scratch:
//!
//! * [`Matrix`] — row-major `f32` matrices with the three GEMM variants the
//!   backward passes require, parallelized with rayon where it pays;
//! * [`GruCell`] / [`GruClassifier`] — a gated recurrent unit with full
//!   backpropagation through time, exposing per-timestep **update and reset
//!   gate activations** (CLAP's inter-packet context features);
//! * [`Autoencoder`] — dense autoencoder trained with L1 reconstruction
//!   loss (paper Eq. 3);
//! * [`Adam`] — the Adam optimizer;
//! * losses ([`softmax_cross_entropy`]) and activations.
//!
//! Every gradient is verified against central finite differences in the
//! test suite. Models serialize with serde for the persistence arrows in
//! the paper's Figure 2/3 pipeline.
//!
//! # The fused inference engine
//!
//! Training wants per-step intermediates; scoring wants throughput. The
//! crate therefore keeps two forward implementations and proves them
//! equivalent in the test suite:
//!
//! * **Reference path** — [`GruCell::forward`] / [`Autoencoder::forward`]:
//!   readable, one allocation per intermediate, used by training and as the
//!   oracle in equivalence tests.
//! * **Fused path** — the inference engine, built from three pieces:
//!   * *Packed gates* ([`PackedGru`]): `Wz/Wr/Wn` stacked into one `3H×I`
//!     matrix and `Uz/Ur/Un` into one `3H×H` matrix, so a sequence's whole
//!     input side is a single `X·Wᵀ` GEMM and each step's recurrent side is
//!     one fused matvec instead of three.
//!   * *Workspaces* ([`GruWorkspace`], [`AeWorkspace`]): grow-only scratch
//!     arenas threaded through the hot path; steady-state inference
//!     performs zero heap allocation. The `*_into` kernels on [`Matrix`],
//!     [`Dense`] and [`Autoencoder`] write into these caller-owned buffers.
//!   * *Batching*: autoencoder scoring takes whole `rows×width` batches
//!     through one ping-ponged GEMM chain ([`Autoencoder::forward_into`]);
//!     `clap-core` shards connections across rayon workers, each worker
//!     owning one set of arenas.
//!   * *Resumable stepping* ([`PackedGru::step`] + [`GruStepScratch`]):
//!     one timestep at a time with the hidden state carried by the caller,
//!     so a streaming scorer can persist an `H`-float state per live flow
//!     and advance it as packets arrive. Step-by-step trajectories are
//!     bitwise identical to a batched [`PackedGru::run`] (pinned in tests),
//!     which is what makes online scores match offline ones exactly.
//!   * *Cross-flow batched stepping* ([`PackedGru::step_batch`] +
//!     [`GruBatchScratch`]): one timestep for `B` *independent* flows at
//!     once. **Gather layout:** the caller packs row `i` of the `B×I`
//!     input matrix with flow `i`'s feature vector and row `i` of the
//!     `B×H` hidden matrix with flow `i`'s resident state (gathered from
//!     wherever it lives — `clap-core` copies f32 slab rows directly and
//!     dequantizes int8-resident rows first); the step updates the hidden
//!     rows in place and fills `B×H` gate matrices, and the caller
//!     scatters row `i` back to flow `i`'s slot. Because the batched GEMM
//!     processes each row through the exact per-row path of the matvec
//!     (and each activation row quantizes independently at int8), **row
//!     `i` is bitwise identical to a separate `step` call for that
//!     flow** — at both precisions — which is what lets a streaming
//!     scorer micro-batch packets across flows without perturbing a
//!     single score.
//!
//! # Kernel dispatch
//!
//! The engine's dense inner loops — the dot products behind
//! [`Matrix::matvec_into`]/`matmul_nt_into`, the axpy updates behind the
//! training GEMMs, the fused GRU gate block, the dense bias+activation
//! epilogue and the autoencoder's L1 error reduction — are function
//! pointers in a [`simd::KernelSet`], selected **once per process**:
//!
//! * **Feature detection.** [`simd::KernelSet::active`] probes the CPU
//!   with `is_x86_feature_detected!` and picks the widest supported set:
//!   `avx512vnni` (AVX-512F+BW+VNNI — adds `vpdpbusd` int8 dots) →
//!   `avx512` (AVX-512F, 16-lane) → `avxvnni` (AVX2 + 256-bit
//!   `vpdpbusd`, for AVX2-class client CPUs with AVX-VNNI) → `avx2`
//!   (AVX2+FMA, 8-lane) → `scalar`. The SIMD sets are explicit `std::arch::x86_64` intrinsic
//!   kernels, so vectorized builds no longer depend on
//!   `-C target-cpu=native`; non-x86 targets always get the scalar set.
//! * **Override.** Setting the `NEURAL_FORCE_SCALAR` environment variable
//!   (to anything but `0`/empty/`false`) pins the scalar reference set —
//!   CI runs the whole suite that way.
//!   `NEURAL_KERNELS=scalar|avx2|avxvnni|avx512|avx512vnni` requests a specific
//!   set (best effort: unsupported requests fall back to the ladder),
//!   e.g. to benchmark the AVX2 path on an AVX-512 machine. Tests can also fetch a specific set
//!   ([`simd::KernelSet::scalar`], `avx2()`, `avx512()`) and call its
//!   kernels directly without affecting the process-wide choice.
//! * **Adding an ISA.** Implement the eleven kernel functions (dot, dot4,
//!   axpy, bias_act, gru_gates, sum_abs_diff, plus the int8 kernels
//!   dot_i8, dot4_i8, act_range, act_encode and the fused
//!   encode_dot4_i8) for the new instruction
//!   set, add a `static` `KernelSet` naming them, and extend the
//!   `select()` ladder in `simd.rs` behind the right
//!   `is_x86_feature_detected!`/`cfg` guard. The property tests in
//!   `tests/proptests.rs` automatically cover any set reported by
//!   [`simd::KernelSet::available`], pinning it to the scalar reference
//!   within 1e-6 across randomized (including non-multiple-of-lane)
//!   shapes.
//!
//! SIMD results may differ from the scalar reference by float
//! reassociation and by the polynomial `exp` used for vectorized
//! sigmoid/tanh; both are bounded to 1e-6 by the test suite. Within one
//! kernel set results are deterministic, and one-row GEMMs are bitwise
//! identical to matvecs — which is what keeps streaming (step-at-a-time)
//! scoring exactly equal to batched scoring.
//!
//! # Int8 quantized inference (`quant`)
//!
//! The [`quant`] module runs the same inference mathematics on int8
//! weights with i32 accumulation — the last large single-core lever after
//! fusion and SIMD, since the autoencoder's f32 weights dominate both the
//! FLOPs (≈176k MACs/packet at Table-6 sizes) and the working set.
//!
//! * **Row-scale scheme.** Weights quantize per *output row*, symmetric:
//!   `q = round(w / s_r)`, `s_r = max|row| / 127` ([`QuantMatrix`]), so
//!   each row spends its full int8 range regardless of other rows.
//!   Activations quantize per GEMM call to 7-bit unsigned over the row's
//!   empirical `[min, max]` (asymmetric — one-sided data like profile
//!   features and gate activations in `[0, 1]` gets double resolution);
//!   the offset folds back through precomputed row sums at dequant time.
//!   Both scan/encode steps are themselves `KernelSet` kernels.
//! * **Saturation behavior.** Activation codes are confined to `0..=127`
//!   and weights to `-127..=127`, which bounds every `maddubs` i16
//!   pair-sum by 2·127·127 = 32258 < 32767: saturation is unreachable by
//!   construction, so the i32 accumulators are exact and **every kernel
//!   tier returns bit-identical results** (integer addition has no
//!   reassociation drift). The proptests pin SIMD == scalar with `==`,
//!   not a tolerance. Outliers cannot saturate the accumulators either.
//!   For long activation rows (the autoencoder's) the quantization grid
//!   is *outlier-clipped*: a histogram pass excludes an isolated extreme
//!   tail (≲1/64 of samples, separated by a clear gap) from the scan
//!   range, so one adversarially-inflated feature saturates to the top
//!   code instead of coarsening the entire row's grid — shrinking the
//!   int8-vs-f32 drift tail on corrupted traffic (still bounded by the
//!   clap-core calibration harness).
//! * **The vnni ladder.** Int8 dot kernels live in the same dispatched
//!   [`KernelSet`]: `avx512vnni` (`vpdpbusd`, u8×i8 quads straight into
//!   i32 lanes) → `avx512` (256-bit `maddubs` + `madd`) → `avxvnni`
//!   (256-bit `vpdpbusd` — lifts the ≈1.1× maddubs ceiling on
//!   AVX2-class client CPUs) → `avx2` → scalar.
//!   `NEURAL_KERNELS=avx512vnni|avxvnni` join the existing override
//!   values. The recurrent matvec's activation re-quantization is fused
//!   into the first 4-row dot quad (`encode_dot4_i8`), eliminating one
//!   full pass over each freshly-encoded activation row.
//!   Measured on the ci preset (single core): int8 fused scoring is
//!   ≈1.75× f32 under the vnni tier and ≈1.11× under pure AVX2.
//! * **Engine selection.** `NEURAL_QUANT=int8` makes every
//!   default-constructed scorer quantized ([`QuantMode::active`]);
//!   `QuantMode::Off`/`Int8` can be pinned per scorer. Int8 streaming is
//!   bitwise identical to int8 batch (per-row activation quantization
//!   keeps 1-row GEMMs == matvecs), so the streaming/sharded equivalence
//!   guarantees hold at either precision.

pub mod adam;
pub mod autoencoder;
pub mod classifier;
pub mod dense;
pub mod gru;
pub mod matrix;
pub mod quant;
pub mod simd;

pub use adam::Adam;
pub use autoencoder::{AeWorkspace, Autoencoder, AutoencoderConfig};
pub use classifier::{GruClassifier, GruClassifierConfig, TrainReport};
pub use dense::Dense;
pub use gru::{GruBatchScratch, GruCell, GruStepScratch, GruTrace, GruWorkspace, PackedGru};
pub use matrix::Matrix;
pub use quant::{
    dequantize_activations_into, quantize_activations, ActQuant, AeEngine, GruEngine,
    QuantAutoencoder, QuantMatrix, QuantMode, QuantPackedGru,
};
pub use simd::KernelSet;

/// Numerically-stable softmax over a slice, in place.
pub fn softmax_inplace(logits: &mut [f32]) {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in logits.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum.max(f32::MIN_POSITIVE);
    for v in logits.iter_mut() {
        *v *= inv;
    }
}

/// Softmax + cross-entropy against a one-hot target class.
///
/// Returns `(loss, dlogits)` where `dlogits = softmax(logits) - onehot`.
pub fn softmax_cross_entropy(logits: &[f32], target: usize) -> (f32, Vec<f32>) {
    let mut probs = logits.to_vec();
    softmax_inplace(&mut probs);
    let p = probs[target].max(1e-12);
    let loss = -p.ln();
    probs[target] -= 1.0;
    (loss, probs)
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let mut v = vec![1.0, 2.0, 3.0, 4.0];
        softmax_inplace(&mut v);
        let sum: f32 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_handles_large_logits() {
        let mut v = vec![1000.0, 1001.0];
        softmax_inplace(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_shape() {
        let (loss, grad) = softmax_cross_entropy(&[0.0, 0.0, 10.0], 2);
        assert!(loss < 0.01);
        assert!(grad[2] < 0.0); // pushes the target logit up
        assert!(grad[0] > 0.0 && grad[1] > 0.0);
        let sum: f32 = grad.iter().sum();
        assert!(sum.abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_wrong_prediction_is_costly() {
        let (loss, _) = softmax_cross_entropy(&[10.0, 0.0], 1);
        assert!(loss > 5.0);
    }

    #[test]
    fn sigmoid_basics() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(20.0) > 0.999);
        assert!(sigmoid(-20.0) < 0.001);
    }
}
