//! Property-based tests for the baseline detectors.

use baselines::incstat::{IncStat, IncStat2D};
use baselines::kitsune::extract_features;
use proptest::prelude::*;

proptest! {
    /// Damped statistics are total and sane for any observation stream:
    /// weight positive after an insert, std non-negative, mean within the
    /// observed value envelope.
    #[test]
    fn incstat_invariants(
        obs in prop::collection::vec((0.0f64..1000.0, 0.0f64..100.0), 1..50),
        lambda in 0.01f64..5.0,
    ) {
        let mut s = IncStat::new(lambda);
        let mut t = 0.0;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (dt, v) in obs {
            t += dt;
            s.insert(t, v);
            lo = lo.min(v);
            hi = hi.max(v);
            prop_assert!(s.weight() > 0.0);
            prop_assert!(s.std() >= 0.0);
            prop_assert!(s.mean() >= lo - 1e-9 && s.mean() <= hi + 1e-9,
                "mean {} outside [{lo}, {hi}]", s.mean());
        }
    }

    /// Later observations dominate a damped mean: after a long quiet
    /// period the mean converges to the new value regardless of history.
    #[test]
    fn incstat_forgets(history in prop::collection::vec(0.0f64..100.0, 1..20), new_val in 0.0f64..100.0) {
        let mut s = IncStat::new(5.0);
        for (i, v) in history.iter().enumerate() {
            s.insert(i as f64 * 0.01, *v);
        }
        s.insert(1e4, new_val);
        prop_assert!((s.mean() - new_val).abs() < 1e-6);
    }

    /// 2-D statistics: correlation is always within [-1, 1]; magnitude is
    /// bounded by the largest mean pair.
    #[test]
    fn incstat2d_bounds(
        obs in prop::collection::vec((0.0f64..0.1, -50.0f64..50.0, any::<bool>()), 1..60),
    ) {
        let mut s = IncStat2D::new(1.0);
        let mut t = 0.0;
        for (dt, v, dir) in obs {
            t += dt;
            s.insert(t, v, dir);
            prop_assert!(s.pcc().abs() <= 1.0 + 1e-6);
            prop_assert!(s.magnitude() >= 0.0);
            prop_assert!(s.radius() >= 0.0);
        }
    }

    /// Kitsune feature extraction is total on generated traffic and always
    /// emits exactly 100 finite features per packet.
    #[test]
    fn kitsune_features_total(seed in 0u64..2_000) {
        let conns = traffic_gen::dataset(seed, 1);
        let feats = extract_features(&conns[0]);
        prop_assert_eq!(feats.len(), conns[0].len());
        for f in &feats {
            prop_assert_eq!(f.len(), baselines::KITSUNE_FEATURES);
            prop_assert!(f.iter().all(|v| v.is_finite()));
        }
    }

    /// Kitsune features are insensitive to header-field corruption that
    /// leaves sizes/timing unchanged — the mechanism behind Baseline #2's
    /// blindness in the paper.
    #[test]
    fn kitsune_blind_to_checksum_bits(seed in 0u64..500, which in 0usize..50) {
        let conns = traffic_gen::dataset(seed, 1);
        let mut corrupted = conns[0].clone();
        let idx = which % corrupted.len();
        corrupted.packets[idx].tcp_mut().checksum ^= 0xbeef;
        let a = extract_features(&conns[0]);
        let b = extract_features(&corrupted);
        prop_assert_eq!(a, b, "volume/timing features must ignore checksum bits");
    }
}
