//! Baseline #2 — Kitsune-lite, a reimplementation of the NDSS '18
//! autoencoder-ensemble NIDS the paper compares against.
//!
//! Pipeline (matching the published architecture, sized per Table 6):
//!
//! 1. **Feature extraction**: 100 damped incremental statistics per packet
//!    — per-λ (5 decay rates) bandwidth stats of the source-IP and
//!    destination-IP streams (3 each) plus 7-dimensional two-stream
//!    channel and socket statistics;
//! 2. **Feature mapper**: agglomerative correlation clustering of the 100
//!    features into 16 groups (ensemble size from Table 6);
//! 3. **Ensemble**: one small autoencoder per group (β = 0.75 bottleneck),
//!    trained for a single epoch (Table 6), plus an output autoencoder
//!    over the ensemble's reconstruction errors.
//!
//! Kitsune sees traffic volume/timing, not header semantics, so DPI
//! evasion packets — which perturb header *fields* — barely move its
//! features. The paper reports AUC ≈ 0.5; this reimplementation shows the
//! same blindness.

use crate::incstat::{IncStat, IncStat2D};
use clap_core::score::{score_errors, ScoredConnection};
use net_packet::{Connection, Direction};
use neural::{AeWorkspace, Autoencoder, AutoencoderConfig, Matrix};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Kitsune's decay rates (1/s).
pub const LAMBDAS: [f64; 5] = [5.0, 3.0, 1.0, 0.1, 0.01];

/// Total feature width: 2 × (5λ × 3) one-stream + 2 × (5λ × 7) two-stream.
pub const KITSUNE_FEATURES: usize = 2 * 15 + 2 * 35;

/// Configuration (Table 6 column "Ensembled Autoencoders in Baseline #2").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KitsuneConfig {
    /// Number of autoencoders in the ensemble.
    pub ensemble: usize,
    /// Training epochs (the paper trains Kitsune for exactly 1).
    pub epochs: usize,
    pub learning_rate: f32,
    /// Profiles averaged around the error peak for the connection score.
    pub score_window: usize,
    pub seed: u64,
}

impl Default for KitsuneConfig {
    fn default() -> Self {
        KitsuneConfig {
            ensemble: 16,
            epochs: 1,
            learning_rate: 1e-3,
            score_window: 5,
            seed: 0xb2,
        }
    }
}

/// Per-connection incremental-statistics state.
struct StreamState {
    src: Vec<IncStat>,
    dst: Vec<IncStat>,
    channel: Vec<IncStat2D>,
    socket: Vec<IncStat2D>,
}

impl StreamState {
    fn new() -> Self {
        StreamState {
            src: LAMBDAS.iter().map(|&l| IncStat::new(l)).collect(),
            dst: LAMBDAS.iter().map(|&l| IncStat::new(l)).collect(),
            channel: LAMBDAS.iter().map(|&l| IncStat2D::new(l)).collect(),
            socket: LAMBDAS.iter().map(|&l| IncStat2D::new(l)).collect(),
        }
    }

    /// Clears all statistics so a scorer can reuse one `StreamState`
    /// across connections without reallocating the 20 stat objects.
    fn reset(&mut self) {
        self.src.iter_mut().for_each(IncStat::reset);
        self.dst.iter_mut().for_each(IncStat::reset);
        self.channel.iter_mut().for_each(IncStat2D::reset);
        self.socket.iter_mut().for_each(IncStat2D::reset);
    }

    fn update_and_extract(&mut self, t: f64, size: f64, dir: Direction) -> Vec<f32> {
        let mut out = vec![0.0; KITSUNE_FEATURES];
        self.update_and_extract_into(t, size, dir, &mut out);
        out
    }

    /// Allocation-free extraction: updates the statistics and writes the
    /// 100-dim feature vector into a caller-owned slice (e.g. a row of a
    /// reused feature matrix).
    fn update_and_extract_into(&mut self, t: f64, size: f64, dir: Direction, out: &mut [f32]) {
        debug_assert_eq!(out.len(), KITSUNE_FEATURES);
        let from_client = dir == Direction::ClientToServer;
        for s in &mut self.src {
            if from_client {
                s.insert(t, size);
            }
        }
        for s in &mut self.dst {
            if !from_client {
                s.insert(t, size);
            }
        }
        for s in &mut self.channel {
            s.insert(t, size, !from_client);
        }
        for s in &mut self.socket {
            // Socket stream: sizes weighted by direction sign, a cheap
            // proxy for per-socket jitter statistics.
            s.insert(t, if from_client { size } else { -size }, !from_client);
        }
        let mut i = 0;
        for s in &self.src {
            for v in s.stats() {
                out[i] = v as f32;
                i += 1;
            }
        }
        for s in &self.dst {
            for v in s.stats() {
                out[i] = v as f32;
                i += 1;
            }
        }
        for s in &self.channel {
            for v in s.stats7() {
                out[i] = v as f32;
                i += 1;
            }
        }
        for s in &self.socket {
            for v in s.stats7() {
                out[i] = v as f32;
                i += 1;
            }
        }
        debug_assert_eq!(i, KITSUNE_FEATURES);
    }
}

/// Extracts the 100-dim Kitsune feature vector for every packet.
pub fn extract_features(conn: &Connection) -> Vec<Vec<f32>> {
    let mut state = StreamState::new();
    conn.packets
        .iter()
        .enumerate()
        .map(|(i, p)| state.update_and_extract(p.timestamp, p.wire_len() as f64, conn.direction(i)))
        .collect()
}

/// Min-max normalizer fitted on training data.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MinMax {
    mins: Vec<f32>,
    maxs: Vec<f32>,
}

impl MinMax {
    fn fit(rows: &[Vec<f32>]) -> Self {
        let dim = rows.first().map_or(0, Vec::len);
        let mut mins = vec![f32::INFINITY; dim];
        let mut maxs = vec![f32::NEG_INFINITY; dim];
        for r in rows {
            for (i, &v) in r.iter().enumerate() {
                mins[i] = mins[i].min(v);
                maxs[i] = maxs[i].max(v);
            }
        }
        for i in 0..dim {
            if !mins[i].is_finite() || maxs[i] - mins[i] < 1e-9 {
                mins[i] = 0.0;
                maxs[i] = 1.0;
            }
        }
        MinMax { mins, maxs }
    }

    fn apply(&self, row: &[f32]) -> Vec<f32> {
        let mut out = row.to_vec();
        self.apply_in_place(&mut out);
        out
    }

    /// In-place normalization (same formula as [`apply`](Self::apply)),
    /// for reused feature-matrix rows.
    fn apply_in_place(&self, row: &mut [f32]) {
        for (i, v) in row.iter_mut().enumerate() {
            *v = ((*v - self.mins[i]) / (self.maxs[i] - self.mins[i])).clamp(-1.0, 2.0);
        }
    }
}

/// The trained Kitsune-lite model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KitsuneLite {
    norm: MinMax,
    /// Feature indices per ensemble member.
    clusters: Vec<Vec<usize>>,
    ensemble: Vec<Autoencoder>,
    output: Autoencoder,
    score_window: usize,
}

/// Greedy correlation-based agglomerative clustering into exactly `k`
/// groups (Kitsune's feature mapper, simplified: pairs are merged in
/// descending |correlation| order under a size cap, then smallest-first
/// until `k` remain).
fn cluster_features(rows: &[Vec<f32>], k: usize) -> Vec<Vec<usize>> {
    let dim = rows.first().map_or(0, Vec::len);
    let n = rows.len().max(1) as f64;
    // Column means/stds.
    let mut mean = vec![0.0f64; dim];
    for r in rows {
        for (i, &v) in r.iter().enumerate() {
            mean[i] += v as f64;
        }
    }
    mean.iter_mut().for_each(|m| *m /= n);
    let mut var = vec![0.0f64; dim];
    for r in rows {
        for (i, &v) in r.iter().enumerate() {
            var[i] += (v as f64 - mean[i]).powi(2);
        }
    }
    var.iter_mut().for_each(|v| *v /= n);

    // Pairwise |correlation|.
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..dim {
        for j in (i + 1)..dim {
            let mut cov = 0.0f64;
            for r in rows {
                cov += (r[i] as f64 - mean[i]) * (r[j] as f64 - mean[j]);
            }
            cov /= n;
            let denom = (var[i] * var[j]).sqrt();
            let corr = if denom > 1e-12 {
                (cov / denom).abs()
            } else {
                0.0
            };
            pairs.push((i, j, corr));
        }
    }
    pairs.sort_by(|a, b| b.2.total_cmp(&a.2));

    // Union-find with a size cap.
    let cap = dim.div_ceil(k).max(2);
    let mut parent: Vec<usize> = (0..dim).collect();
    let mut size = vec![1usize; dim];
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            parent[r] = parent[parent[r]];
            r = parent[r];
        }
        r
    }
    let mut clusters = dim;
    for &(i, j, _) in &pairs {
        if clusters <= k {
            break;
        }
        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
        if ri != rj && size[ri] + size[rj] <= cap {
            parent[rj] = ri;
            size[ri] += size[rj];
            clusters -= 1;
        }
    }
    // Force down to k by merging smallest clusters, ignoring the cap.
    while clusters > k {
        let mut roots: Vec<(usize, usize)> = (0..dim)
            .filter(|&i| find(&mut parent, i) == i)
            .map(|i| (size[i], i))
            .collect();
        roots.sort_unstable();
        let (_, a) = roots[0];
        let (_, b) = roots[1];
        parent[b] = a;
        size[a] += size[b];
        clusters -= 1;
    }

    let mut groups: std::collections::HashMap<usize, Vec<usize>> = std::collections::HashMap::new();
    for i in 0..dim {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    out.sort_by_key(|g| g[0]);
    out
}

impl KitsuneLite {
    /// Trains on benign traffic.
    pub fn train(benign: &[Connection], cfg: &KitsuneConfig) -> KitsuneLite {
        let rows: Vec<Vec<f32>> = benign.par_iter().flat_map_iter(extract_features).collect();
        let norm = MinMax::fit(&rows);
        let normed: Vec<Vec<f32>> = rows.iter().map(|r| norm.apply(r)).collect();
        let clusters = cluster_features(&normed, cfg.ensemble);

        // One tiny AE per cluster, β = 0.75 bottleneck ratio.
        let mut ensemble = Vec::with_capacity(clusters.len());
        for (ci, cluster) in clusters.iter().enumerate() {
            let d = cluster.len();
            let bottleneck =
                ((d as f32 * 0.75).round() as usize).clamp(1, d.saturating_sub(1).max(1));
            let sizes = vec![d, bottleneck, d];
            let mut data = Matrix::zeros(normed.len(), d);
            for (r, row) in normed.iter().enumerate() {
                for (c, &fi) in cluster.iter().enumerate() {
                    data.set(r, c, row[fi]);
                }
            }
            let ae_cfg = AutoencoderConfig {
                layer_sizes: sizes.clone(),
                epochs: cfg.epochs,
                batch_size: 32,
                learning_rate: cfg.learning_rate,
                seed: cfg.seed ^ ci as u64,
            };
            let mut ae = Autoencoder::new(&sizes, ae_cfg.seed);
            ae.train(&data, &ae_cfg);
            ensemble.push(ae);
        }

        // Output AE over the ensemble's per-packet error vector, batched
        // per ensemble member across the whole training set.
        let mut err_rows = Matrix::zeros(normed.len(), clusters.len());
        let mut sub = Matrix::default();
        for (ci, (cluster, ae)) in clusters.iter().zip(&ensemble).enumerate() {
            sub.resize(normed.len(), cluster.len());
            for (r, row) in normed.iter().enumerate() {
                let dst = sub.row_mut(r);
                for (c, &fi) in cluster.iter().enumerate() {
                    dst[c] = row[fi];
                }
            }
            for (r, err) in ae.reconstruction_errors(&sub).into_iter().enumerate() {
                err_rows.set(r, ci, err);
            }
        }
        let out_sizes = vec![
            clusters.len(),
            (clusters.len() * 3 / 4).max(1),
            clusters.len(),
        ];
        let out_cfg = AutoencoderConfig {
            layer_sizes: out_sizes.clone(),
            epochs: cfg.epochs,
            batch_size: 32,
            learning_rate: cfg.learning_rate,
            seed: cfg.seed ^ 0xff,
        };
        let mut output = Autoencoder::new(&out_sizes, out_cfg.seed);
        output.train(&err_rows, &out_cfg);

        KitsuneLite {
            norm,
            clusters,
            ensemble,
            output,
            score_window: cfg.score_window,
        }
    }

    /// Builds a reusable scoring session holding every scratch arena the
    /// hot path needs (mirroring `clap_core`'s `ClapScorer`): one scorer
    /// per worker thread; scoring through it is allocation-free in steady
    /// state aside from the returned results.
    pub fn scorer(&self) -> KitsuneScorer<'_> {
        KitsuneScorer {
            model: self,
            state: StreamState::new(),
            features: Matrix::default(),
            sub: Matrix::default(),
            err_rows: Matrix::default(),
            ae_ws: AeWorkspace::new(),
            member_errs: Vec::new(),
        }
    }

    /// Per-packet anomaly scores (output-AE reconstruction errors).
    ///
    /// Convenience wrapper building a fresh [`KitsuneScorer`]; loops
    /// should create one via [`KitsuneLite::scorer`] and reuse it.
    pub fn packet_scores(&self, conn: &Connection) -> Vec<f32> {
        let mut out = Vec::new();
        self.scorer().packet_scores_into(conn, &mut out);
        out
    }

    /// Connection-level score via the same localize-and-estimate summary
    /// CLAP uses (fair comparison).
    pub fn score_connection(&self, conn: &Connection) -> ScoredConnection {
        self.scorer().score_connection(conn)
    }

    /// Scores many connections in parallel, sharding them across rayon
    /// workers with one [`KitsuneScorer`] arena set per shard (the same
    /// fused-engine treatment CLAP's batch path gets, so throughput
    /// comparisons are fused-vs-fused).
    pub fn score_connections(&self, conns: &[Connection]) -> Vec<ScoredConnection> {
        if conns.is_empty() {
            return Vec::new();
        }
        let workers = rayon::current_num_threads().max(1);
        let shard = conns.len().div_ceil(workers * 4).max(1);
        let nested: Vec<Vec<ScoredConnection>> = conns
            .par_chunks(shard)
            .map(|chunk| {
                let mut scorer = self.scorer();
                chunk.iter().map(|c| scorer.score_connection(c)).collect()
            })
            .collect();
        nested.into_iter().flatten().collect()
    }
}

/// A Kitsune-lite scoring session: the damped-statistics state plus the
/// feature/sub-cluster/error matrices and the autoencoder workspace, all
/// reused across connections. Steady state performs no heap allocation
/// beyond the returned results.
pub struct KitsuneScorer<'a> {
    model: &'a KitsuneLite,
    state: StreamState,
    /// `packets × 100` normalized feature rows of the current connection.
    features: Matrix,
    /// `packets × |cluster|` gather buffer for one ensemble member.
    sub: Matrix,
    /// `packets × ensemble` per-member reconstruction errors.
    err_rows: Matrix,
    ae_ws: AeWorkspace,
    member_errs: Vec<f32>,
}

impl KitsuneScorer<'_> {
    /// Per-packet anomaly scores, written into `out` (the buffer is
    /// cleared first, so it holds exactly this connection's scores) — the
    /// allocation-free core. Batched on the shared GEMM kernels: one
    /// forward pass per ensemble member over all packets of the
    /// connection, then one batched pass through the output autoencoder.
    pub fn packet_scores_into(&mut self, conn: &Connection, out: &mut Vec<f32>) {
        out.clear();
        let packets = conn.len();
        if packets == 0 {
            return;
        }
        self.state.reset();
        self.features.resize(packets, KITSUNE_FEATURES);
        for (i, p) in conn.packets.iter().enumerate() {
            let row = self.features.row_mut(i);
            self.state.update_and_extract_into(
                p.timestamp,
                p.wire_len() as f64,
                conn.direction(i),
                row,
            );
            self.model.norm.apply_in_place(row);
        }
        self.err_rows.resize(packets, self.model.clusters.len());
        for (ci, (cluster, ae)) in self
            .model
            .clusters
            .iter()
            .zip(&self.model.ensemble)
            .enumerate()
        {
            self.sub.resize(packets, cluster.len());
            for r in 0..packets {
                let src = self.features.row(r);
                let dst = self.sub.row_mut(r);
                for (c, &fi) in cluster.iter().enumerate() {
                    dst[c] = src[fi];
                }
            }
            self.member_errs.clear();
            ae.reconstruction_errors_into(&self.sub, &mut self.ae_ws, &mut self.member_errs);
            for (r, &err) in self.member_errs.iter().enumerate() {
                self.err_rows.set(r, ci, err);
            }
        }
        self.model
            .output
            .reconstruction_errors_into(&self.err_rows, &mut self.ae_ws, out);
    }

    /// Scores one connection through the reused arenas.
    pub fn score_connection(&mut self, conn: &Connection) -> ScoredConnection {
        let mut window_errors = Vec::new();
        self.packet_scores_into(conn, &mut window_errors);
        let (peak, score) = score_errors(&window_errors, self.model.score_window);
        ScoredConnection {
            peak_packet: peak.min(conn.len().saturating_sub(1)),
            peak_window: peak,
            window_errors,
            score,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_width_is_100() {
        assert_eq!(KITSUNE_FEATURES, 100, "Table 6: total input size 100");
        let conns = traffic_gen::dataset(61, 2);
        for f in extract_features(&conns[0]) {
            assert_eq!(f.len(), KITSUNE_FEATURES);
            assert!(f.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn clustering_yields_requested_count() {
        let conns = traffic_gen::dataset(62, 5);
        let rows: Vec<Vec<f32>> = conns.iter().flat_map(extract_features).collect();
        let clusters = cluster_features(&rows, 16);
        assert_eq!(clusters.len(), 16);
        let mut all: Vec<usize> = clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..KITSUNE_FEATURES).collect::<Vec<_>>());
    }

    #[test]
    fn trains_and_scores() {
        let benign = traffic_gen::dataset(63, 20);
        let model = KitsuneLite::train(&benign, &KitsuneConfig::default());
        let s = model.score_connection(&benign[0]);
        assert_eq!(s.window_errors.len(), benign[0].len());
        assert!(s.score.is_finite());
    }

    #[test]
    fn blind_to_header_only_evasion() {
        // The paper's core claim about Baseline #2: header-field evasion is
        // invisible to volume/timing features (AUC ≈ 0.5).
        let benign = traffic_gen::dataset(64, 30);
        let model = KitsuneLite::train(&benign, &KitsuneConfig::default());
        let held_out = traffic_gen::dataset(97, 12);
        let benign_scores: Vec<f32> = model
            .score_connections(&held_out)
            .iter()
            .map(|s| s.score)
            .collect();
        let strat = dpi_attacks::strategy_by_id("geneva-rst-bad-chksum").unwrap();
        let attacked = dpi_attacks::build_adversarial_set(strat, &held_out, 1);
        let adv_scores: Vec<f32> = attacked
            .iter()
            .map(|r| model.score_connection(&r.connection).score)
            .collect();
        let auc = clap_core::auc_roc(&benign_scores, &adv_scores);
        assert!(
            (0.2..0.85).contains(&auc),
            "Kitsune-lite should be near-blind to header evasion, AUC = {auc}"
        );
    }
}
