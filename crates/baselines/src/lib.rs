//! Evaluation baselines from the paper (§4.1):
//!
//! * **Baseline #1** ([`Baseline1`]) — the context-agnostic ablation of
//!   CLAP: the same pipeline with all gate-weight features removed and
//!   profiles limited to a single packet, i.e. an autoencoder over the 51
//!   intra-packet features only (Table 6: 3 layers, bottleneck 5). The gap
//!   between CLAP and Baseline #1 is the paper's measure of how much the
//!   *inter-packet* context contributes (Table 2).
//! * **Baseline #2** ([`KitsuneLite`]) — a faithful-in-spirit
//!   reimplementation of Kitsune (Mirsky et al., NDSS '18), the
//!   state-of-the-art general-purpose autoencoder-ensemble NIDS: damped
//!   incremental statistics over traffic streams, a correlation-based
//!   feature mapper, an ensemble of small autoencoders and an output
//!   autoencoder (Table 6: ensemble 16, 100 input features, 1 epoch).
//!   Kitsune's features describe traffic *volume and timing*, not header
//!   semantics — which is exactly why the paper finds it blind to DPI
//!   evasion (AUC ≈ 0.5).

pub mod baseline1;
pub mod incstat;
pub mod kitsune;

pub use baseline1::{Baseline1, Baseline1Config};
pub use incstat::{IncStat, IncStat2D};
pub use kitsune::{KitsuneConfig, KitsuneLite, KitsuneScorer, KITSUNE_FEATURES};
