//! Baseline #1 — CLAP without inter-packet context (paper §4.1).
//!
//! Identical feature surface to CLAP's intra-packet side: the 51 packet
//! features of Table 7 (including amplification features), but (1) no gate
//! weights and (2) single-packet profiles instead of stacked windows. The
//! autoencoder shape follows Table 6: 3 layers, input 51, bottleneck 5.

use clap_core::features::{extract_connection, RangeModel, NUM_PACKET};
use clap_core::score::{score_errors, ScoredConnection};
use net_packet::Connection;
use neural::{Autoencoder, AutoencoderConfig, Matrix};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Index of the SYN bit inside the flag one-hot block (Table 7 #5–#13).
const SYN_FLAG_FEATURE: usize = 5;
/// Extra copies of each SYN-flagged row added to the training matrix.
const SYN_OVERSAMPLE: usize = 5;

/// Baseline #1 configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Baseline1Config {
    pub ae: AutoencoderConfig,
    /// Profiles averaged around the error peak (same as CLAP for a fair
    /// comparison).
    pub score_window: usize,
}

impl Baseline1Config {
    /// Table 6 shape with a minutes-scale epoch budget.
    pub fn quick() -> Self {
        let ae = AutoencoderConfig::baseline1(NUM_PACKET);
        Baseline1Config {
            ae,
            score_window: 5,
        }
    }

    /// Paper-scale epochs (Table 6: 1000).
    pub fn paper() -> Self {
        let mut cfg = Self::quick();
        cfg.ae.epochs = 1000;
        cfg
    }
}

/// The trained context-agnostic detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Baseline1 {
    pub ranges: RangeModel,
    pub ae: Autoencoder,
    pub score_window: usize,
}

impl Baseline1 {
    /// Trains on benign traffic only.
    pub fn train(benign: &[Connection], cfg: &Baseline1Config) -> Baseline1 {
        let fvs_per_conn: Vec<_> = benign.par_iter().map(extract_connection).collect();
        let ranges = RangeModel::fit(fvs_per_conn.iter().flatten());
        let mut rows: Vec<Vec<f32>> = fvs_per_conn
            .iter()
            .flatten()
            .map(|fv| ranges.packet_features(fv))
            .collect();
        // Handshake rows are a small minority (2–3 per connection), and a
        // 5-wide bottleneck under L1 loss simply ignores them — leaving the
        // SYN as every connection's reconstruction-error peak, which blinds
        // the localize-and-estimate score to real single-packet anomalies.
        // Oversample SYN-flagged rows so the benign manifold covers them.
        let syn_rows: Vec<Vec<f32>> = rows
            .iter()
            .filter(|r| r[SYN_FLAG_FEATURE] == 1.0)
            .cloned()
            .collect();
        for _ in 0..SYN_OVERSAMPLE {
            rows.extend(syn_rows.iter().cloned());
        }
        let mut data = Matrix::zeros(rows.len(), NUM_PACKET);
        for (i, row) in rows.iter().enumerate() {
            data.row_mut(i).copy_from_slice(row);
        }
        let mut ae_cfg = cfg.ae.clone();
        ae_cfg.layer_sizes = vec![NUM_PACKET, 5, NUM_PACKET];
        let mut ae = Autoencoder::new(&ae_cfg.layer_sizes, ae_cfg.seed);
        ae.train(&data, &ae_cfg);
        Baseline1 {
            ranges,
            ae,
            score_window: cfg.score_window,
        }
    }

    /// Scores one connection with per-packet profiles.
    pub fn score_connection(&self, conn: &Connection) -> ScoredConnection {
        let fvs = extract_connection(conn);
        let mut data = Matrix::zeros(fvs.len(), NUM_PACKET);
        for (i, fv) in fvs.iter().enumerate() {
            data.row_mut(i)
                .copy_from_slice(&self.ranges.packet_features(fv));
        }
        let window_errors = self.ae.reconstruction_errors(&data);
        let (peak, score) = score_errors(&window_errors, self.score_window);
        ScoredConnection {
            peak_packet: peak.min(conn.len().saturating_sub(1)),
            peak_window: peak,
            window_errors,
            score,
        }
    }

    /// Scores many connections in parallel.
    pub fn score_connections(&self, conns: &[Connection]) -> Vec<ScoredConnection> {
        conns.par_iter().map(|c| self.score_connection(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Baseline1Config {
        let mut cfg = Baseline1Config::quick();
        cfg.ae.epochs = 120;
        cfg
    }

    #[test]
    fn trains_and_scores() {
        let benign = traffic_gen::dataset(51, 25);
        let b1 = Baseline1::train(&benign, &tiny_cfg());
        let s = b1.score_connection(&benign[0]);
        assert_eq!(s.window_errors.len(), benign[0].len());
        assert!(s.score.is_finite());
    }

    #[test]
    fn detects_intra_packet_violations() {
        // Baseline #1 keeps intra-packet power: a bad-checksum packet is a
        // single-packet anomaly it must see.
        let benign = traffic_gen::dataset(52, 40);
        let b1 = Baseline1::train(&benign, &tiny_cfg());
        let held_out = traffic_gen::dataset(99, 10);
        let benign_scores: Vec<f32> = b1
            .score_connections(&held_out)
            .iter()
            .map(|s| s.score)
            .collect();

        let strat = dpi_attacks::strategy_by_id("liberate-bad-tcp-checksum-max").unwrap();
        let attacked = dpi_attacks::build_adversarial_set(strat, &held_out, 1);
        let adv_scores: Vec<f32> = attacked
            .iter()
            .map(|r| b1.score_connection(&r.connection).score)
            .collect();
        let auc = clap_core::auc_roc(&benign_scores, &adv_scores);
        assert!(
            auc > 0.6,
            "Baseline1 should catch bad checksums, AUC = {auc}"
        );
    }

    #[test]
    fn misses_inter_packet_violations() {
        // A pure injected RST is intra-packet clean; context-agnostic
        // scoring should do poorly (this is the paper's core claim).
        let benign = traffic_gen::dataset(53, 40);
        let b1 = Baseline1::train(&benign, &tiny_cfg());
        let held_out = traffic_gen::dataset(98, 10);
        let benign_scores: Vec<f32> = b1
            .score_connections(&held_out)
            .iter()
            .map(|s| s.score)
            .collect();
        let strat = dpi_attacks::strategy_by_id("symtcp-snort-rst-pure").unwrap();
        let attacked = dpi_attacks::build_adversarial_set(strat, &held_out, 1);
        let adv_scores: Vec<f32> = attacked
            .iter()
            .map(|r| b1.score_connection(&r.connection).score)
            .collect();
        let auc = clap_core::auc_roc(&benign_scores, &adv_scores);
        assert!(
            auc < 0.95,
            "Baseline1 should not excel on pure inter-packet attacks, AUC = {auc}"
        );
    }
}
