//! Damped incremental statistics — Kitsune's feature substrate.
//!
//! Each statistic maintains exponentially-decayed weight/linear-sum/
//! square-sum triples `(w, LS, SS)`, decayed by `2^(-λ·Δt)`, from which
//! mean, standard deviation and magnitude are read out in O(1). The 2-D
//! variant additionally tracks a residual co-moment between two streams
//! for covariance/correlation readouts.

use serde::{Deserialize, Serialize};

/// One-dimensional damped incremental statistic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncStat {
    lambda: f64,
    w: f64,
    ls: f64,
    ss: f64,
    last_t: Option<f64>,
}

impl IncStat {
    /// `lambda` is the decay rate in 1/seconds (Kitsune uses
    /// λ ∈ {5, 3, 1, 0.1, 0.01}).
    pub fn new(lambda: f64) -> Self {
        IncStat {
            lambda,
            w: 0.0,
            ls: 0.0,
            ss: 0.0,
            last_t: None,
        }
    }

    fn decay(&mut self, t: f64) {
        if let Some(last) = self.last_t {
            let dt = (t - last).max(0.0);
            let d = (2.0f64).powf(-self.lambda * dt);
            self.w *= d;
            self.ls *= d;
            self.ss *= d;
        }
        self.last_t = Some(t);
    }

    /// Inserts observation `v` at time `t`.
    pub fn insert(&mut self, t: f64, v: f64) {
        self.decay(t);
        self.w += 1.0;
        self.ls += v;
        self.ss += v * v;
    }

    /// Decayed observation weight.
    pub fn weight(&self) -> f64 {
        self.w
    }

    /// Decayed mean.
    pub fn mean(&self) -> f64 {
        if self.w > 1e-12 {
            self.ls / self.w
        } else {
            0.0
        }
    }

    /// Decayed standard deviation.
    pub fn std(&self) -> f64 {
        if self.w > 1e-12 {
            let var = (self.ss / self.w - self.mean().powi(2)).max(0.0);
            var.sqrt()
        } else {
            0.0
        }
    }

    /// `(weight, mean, std)` in one call.
    pub fn stats(&self) -> [f64; 3] {
        [self.weight(), self.mean(), self.std()]
    }

    /// Clears all accumulated state (as if freshly constructed), keeping
    /// the decay rate — lets per-connection scorers reuse one allocation.
    pub fn reset(&mut self) {
        self.w = 0.0;
        self.ls = 0.0;
        self.ss = 0.0;
        self.last_t = None;
    }
}

/// Two-stream damped statistic with covariance readouts (Kitsune's
/// channel/socket features relating the two directions of a flow).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncStat2D {
    pub a: IncStat,
    pub b: IncStat,
    /// Decayed co-moment of residuals.
    sr: f64,
    w3: f64,
    lambda: f64,
    last_t: Option<f64>,
}

impl IncStat2D {
    pub fn new(lambda: f64) -> Self {
        IncStat2D {
            a: IncStat::new(lambda),
            b: IncStat::new(lambda),
            sr: 0.0,
            w3: 0.0,
            lambda,
            last_t: None,
        }
    }

    fn decay_joint(&mut self, t: f64) {
        if let Some(last) = self.last_t {
            let dt = (t - last).max(0.0);
            let d = (2.0f64).powf(-self.lambda * dt);
            self.sr *= d;
            self.w3 *= d;
        }
        self.last_t = Some(t);
    }

    /// Inserts an observation on stream A (0) or B (1).
    pub fn insert(&mut self, t: f64, v: f64, stream_b: bool) {
        self.decay_joint(t);
        // Residual against the other stream's current mean.
        let (this_mean, other_mean) = if stream_b {
            (self.b.mean(), self.a.mean())
        } else {
            (self.a.mean(), self.b.mean())
        };
        let _ = this_mean;
        if stream_b {
            self.b.insert(t, v);
            self.sr += (v - self.b.mean()) * (0.0 - other_mean).abs().min(1.0);
        } else {
            self.a.insert(t, v);
            self.sr += (v - self.a.mean()) * (0.0 - other_mean).abs().min(1.0);
        }
        self.w3 += 1.0;
    }

    /// Euclidean norm of the two means ("magnitude" in Kitsune).
    pub fn magnitude(&self) -> f64 {
        (self.a.mean().powi(2) + self.b.mean().powi(2)).sqrt()
    }

    /// Euclidean norm of the two variances ("radius").
    pub fn radius(&self) -> f64 {
        (self.a.std().powi(4) + self.b.std().powi(4)).sqrt()
    }

    /// Approximate covariance of the residuals.
    pub fn cov(&self) -> f64 {
        if self.w3 > 1e-12 {
            self.sr / self.w3
        } else {
            0.0
        }
    }

    /// Approximate Pearson correlation.
    pub fn pcc(&self) -> f64 {
        let denom = self.a.std() * self.b.std();
        if denom > 1e-12 {
            (self.cov() / denom).clamp(-1.0, 1.0)
        } else {
            0.0
        }
    }

    /// Clears all accumulated state, keeping the decay rate (see
    /// [`IncStat::reset`]).
    pub fn reset(&mut self) {
        self.a.reset();
        self.b.reset();
        self.sr = 0.0;
        self.w3 = 0.0;
        self.last_t = None;
    }

    /// The 7 channel statistics Kitsune extracts per λ:
    /// weight, mean, std (of the observing stream) + magnitude, radius,
    /// covariance, correlation of the pair.
    pub fn stats7(&self) -> [f64; 7] {
        [
            self.a.weight(),
            self.a.mean(),
            self.a.std(),
            self.magnitude(),
            self.radius(),
            self.cov(),
            self.pcc(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_stream_has_zero_std() {
        let mut s = IncStat::new(1.0);
        for i in 0..50 {
            s.insert(i as f64 * 0.01, 10.0);
        }
        assert!((s.mean() - 10.0).abs() < 1e-9);
        assert!(s.std() < 1e-6);
        assert!(s.weight() > 10.0);
    }

    #[test]
    fn decay_forgets_the_past() {
        let mut s = IncStat::new(5.0);
        s.insert(0.0, 100.0);
        // After 10 seconds at λ=5, the old observation is ~2^-50 ≈ gone.
        s.insert(10.0, 1.0);
        assert!((s.mean() - 1.0).abs() < 1e-6);
        assert!((s.weight() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn no_decay_at_same_instant() {
        let mut s = IncStat::new(5.0);
        s.insert(1.0, 2.0);
        s.insert(1.0, 4.0);
        assert!((s.weight() - 2.0).abs() < 1e-9);
        assert!((s.mean() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn variance_of_alternating_values() {
        let mut s = IncStat::new(0.0001); // effectively undamped
        for i in 0..1000 {
            s.insert(i as f64 * 1e-4, if i % 2 == 0 { 0.0 } else { 2.0 });
        }
        assert!((s.mean() - 1.0).abs() < 0.01);
        assert!((s.std() - 1.0).abs() < 0.01);
    }

    #[test]
    fn twod_magnitude_and_radius() {
        let mut s = IncStat2D::new(0.001);
        for i in 0..100 {
            s.insert(i as f64 * 0.001, 3.0, false);
            s.insert(i as f64 * 0.001, 4.0, true);
        }
        assert!((s.magnitude() - 5.0).abs() < 0.05);
        assert!(s.radius() < 0.1); // constant streams, no variance
        assert!(s.pcc().abs() <= 1.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = IncStat::new(1.0);
        assert_eq!(s.stats(), [0.0, 0.0, 0.0]);
        let s2 = IncStat2D::new(1.0);
        assert_eq!(s2.stats7(), [0.0; 7]);
    }
}
