//! Property-based tests for the introspection wire format: randomized
//! records round-trip bit-exactly (floats compared by bit pattern, so
//! NaNs and signed zeros count too), concatenated streams parse frame by
//! frame, and arbitrary bytes never panic the parser.

use clap_telemetry::hist::{StageSummary, STAGES};
use clap_telemetry::wire::{
    read_frames, write_flow, write_snapshot, write_verdict, FlowRecord, FrameKind, FrameView,
    VerdictRecord,
};
use clap_telemetry::{ShardSnapshot, TelemetrySnapshot};
use proptest::prelude::*;

fn arb_verdict() -> impl Strategy<Value = VerdictRecord> {
    (
        (
            any::<bool>(),
            any::<u8>(),
            any::<[u8; 16]>(),
            any::<u16>(),
            any::<[u8; 16]>(),
            any::<u16>(),
        ),
        (
            any::<u64>(),
            any::<u32>(),
            0u8..5,
            any::<u16>(),
            any::<u32>(),
            any::<u32>(),
        ),
    )
        .prop_map(
            |(
                (v6, proto, client_addr, client_port, server_addr, server_port),
                (arrival, packets, reason, shard, score_bits, peak_packet),
            )| VerdictRecord {
                v6,
                proto,
                client_addr,
                client_port,
                server_addr,
                server_port,
                arrival,
                packets,
                reason,
                shard,
                score: f32::from_bits(score_bits),
                peak_packet,
            },
        )
}

fn arb_flow() -> impl Strategy<Value = FlowRecord> {
    (
        (
            any::<bool>(),
            any::<u8>(),
            any::<[u8; 16]>(),
            any::<u16>(),
            any::<[u8; 16]>(),
            any::<u16>(),
        ),
        (
            any::<u8>(),
            any::<bool>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
        ),
    )
        .prop_map(
            |(
                (v6, proto, client_addr, client_port, server_addr, server_port),
                (state, lingering, age_bits, idle_bits, packets, bytes, score_bits, arrival),
            )| FlowRecord {
                v6,
                proto,
                client_addr,
                client_port,
                server_addr,
                server_port,
                state,
                lingering,
                age: f64::from_bits(age_bits),
                idle: f64::from_bits(idle_bits),
                packets,
                bytes,
                score: f32::from_bits(score_bits),
                arrival,
            },
        )
}

fn arb_shard_snapshot() -> impl Strategy<Value = ShardSnapshot> {
    (
        prop::collection::vec(any::<u64>(), 19),
        prop::collection::vec(any::<u64>(), STAGES * 5),
    )
        .prop_map(|(c, st)| ShardSnapshot {
            pushed: c[0],
            scored: c[1],
            dropped: c[2],
            quarantined: c[3],
            dispatched: c[4],
            in_flight: c[5],
            restarts: c[6],
            flows_closed: c[7],
            full_waits: c[8],
            degraded_windows: c[9],
            heartbeat: c[10],
            live_flows: c[11],
            flows_peak: c[12],
            evicted_idle: c[13],
            evicted_capacity: c[14],
            closed_tcp: c[15],
            length_capped: c[16],
            drained: c[17],
            time_wait_expired: c[18],
            stages: std::array::from_fn(|i| StageSummary {
                count: st[i * 5],
                sum_ns: st[i * 5 + 1],
                p50_ns: st[i * 5 + 2],
                p99_ns: st[i * 5 + 3],
                max_ns: st[i * 5 + 4],
            }),
        })
}

fn arb_snapshot() -> impl Strategy<Value = TelemetrySnapshot> {
    prop::collection::vec(arb_shard_snapshot(), 0..5)
        .prop_map(|shards| TelemetrySnapshot { shards })
}

/// Field-by-field equality with floats compared by bit pattern.
fn verdicts_bit_equal(a: &VerdictRecord, b: &VerdictRecord) -> bool {
    a.v6 == b.v6
        && a.proto == b.proto
        && a.client_addr == b.client_addr
        && a.client_port == b.client_port
        && a.server_addr == b.server_addr
        && a.server_port == b.server_port
        && a.arrival == b.arrival
        && a.packets == b.packets
        && a.reason == b.reason
        && a.shard == b.shard
        && a.score.to_bits() == b.score.to_bits()
        && a.peak_packet == b.peak_packet
}

fn flows_bit_equal(a: &FlowRecord, b: &FlowRecord) -> bool {
    a.v6 == b.v6
        && a.proto == b.proto
        && a.client_addr == b.client_addr
        && a.client_port == b.client_port
        && a.server_addr == b.server_addr
        && a.server_port == b.server_port
        && a.state == b.state
        && a.lingering == b.lingering
        && a.age.to_bits() == b.age.to_bits()
        && a.idle.to_bits() == b.idle.to_bits()
        && a.packets == b.packets
        && a.bytes == b.bytes
        && a.score.to_bits() == b.score.to_bits()
        && a.arrival == b.arrival
}

proptest! {
    /// Any verdict record survives encode → zero-copy view → record
    /// bit-exactly, including NaN and -0.0 scores.
    #[test]
    fn wire_verdict_round_trips_bit_exact(r in arb_verdict()) {
        let mut buf = Vec::new();
        write_verdict(&mut buf, &r).unwrap();
        let (frame, rest) = FrameView::parse(&buf).unwrap();
        prop_assert!(rest.is_empty());
        let back = frame.verdict().unwrap().to_record();
        prop_assert!(verdicts_bit_equal(&r, &back), "{r:?} != {back:?}");
    }

    /// Any flow record survives the round trip bit-exactly.
    #[test]
    fn wire_flow_round_trips_bit_exact(r in arb_flow()) {
        let mut buf = Vec::new();
        write_flow(&mut buf, &r).unwrap();
        let (frame, rest) = FrameView::parse(&buf).unwrap();
        prop_assert!(rest.is_empty());
        let back = frame.flow().unwrap().to_record();
        prop_assert!(flows_bit_equal(&r, &back), "{r:?} != {back:?}");
    }

    /// Any snapshot (any shard count, arbitrary counter values) decodes
    /// to an equal snapshot.
    #[test]
    fn wire_snapshot_round_trips(s in arb_snapshot()) {
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &s).unwrap();
        let (frame, rest) = FrameView::parse(&buf).unwrap();
        prop_assert!(rest.is_empty());
        prop_assert_eq!(frame.snapshot().unwrap(), s);
    }

    /// A concatenated stream of mixed frames parses back in order with
    /// every record intact — the shape a telemetry sink actually sees.
    #[test]
    fn wire_mixed_stream_round_trips(
        verdicts in prop::collection::vec(arb_verdict(), 0..6),
        flows in prop::collection::vec(arb_flow(), 0..6),
        snap in arb_snapshot(),
    ) {
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        for v in &verdicts {
            write_verdict(&mut buf, v).unwrap();
        }
        for f in &flows {
            write_flow(&mut buf, f).unwrap();
        }
        let frames = read_frames(&buf).unwrap();
        prop_assert_eq!(frames.len(), 1 + verdicts.len() + flows.len());
        prop_assert_eq!(frames[0].snapshot().unwrap(), snap);
        for (v, frame) in verdicts.iter().zip(&frames[1..]) {
            prop_assert_eq!(frame.kind(), FrameKind::Verdict);
            prop_assert!(verdicts_bit_equal(v, &frame.verdict().unwrap().to_record()));
        }
        for (f, frame) in flows.iter().zip(&frames[1 + verdicts.len()..]) {
            prop_assert!(flows_bit_equal(f, &frame.flow().unwrap().to_record()));
        }
    }

    /// The frame parser never panics on arbitrary bytes: every outcome
    /// is a frame or a typed error.
    #[test]
    fn wire_parser_never_panics(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_frames(&data);
        let _ = FrameView::parse(&data);
    }

    /// Truncating a valid stream anywhere inside the final frame yields
    /// `Truncated`, never garbage or a panic.
    #[test]
    fn wire_truncation_is_detected(r in arb_verdict(), cut in 1usize..68) {
        let mut buf = Vec::new();
        write_verdict(&mut buf, &r).unwrap();
        let cut = cut.min(buf.len() - 1);
        match read_frames(&buf[..cut]) {
            Err(clap_telemetry::wire::WireError::Truncated { .. }) => {}
            other => prop_assert!(false, "expected Truncated, got {other:?}"),
        }
    }
}
