//! Live telemetry plane for the CLAP engine: wait-free runtime counters
//! with coherent mid-run snapshots, per-stage latency histograms
//! ([`hist`]), a compact binary export format ([`wire`]) and
//! human-readable renderers ([`render`]).
//!
//! The engine's supervision and flow-table counters used to be plain
//! integers readable only after a run finished. This crate re-homes them
//! onto shared atomic cells that the dispatcher and workers update
//! *wait-free* mid-run (plain relaxed stores, no RMW, no retry loop),
//! while any other thread can take a [`TelemetrySnapshot`] that satisfies
//! the exact accounting invariant
//!
//! ```text
//! pushed == scored + dropped + quarantined      (per shard, every instant)
//! ```
//!
//! at *every snapshot instant* — not just at teardown.
//!
//! # Design note: memory-ordering contract
//!
//! ## Single-writer regions under per-region seqlocks
//!
//! Every counter belongs to exactly one *writer region*, and each region
//! has exactly one writer thread at any time:
//!
//! * [`DispatchCells`] — written by the dispatch loop (packets addressed,
//!   packets shed, backpressure stalls, degrade transitions).
//! * [`WorkerCells`] — written by the shard's worker thread (packets
//!   scored / quarantined / lost in flight, restarts, flows closed).
//! * [`StreamCells`] — written by whichever thread owns the shard's
//!   `StreamScorer` (flow-table gauges and close-reason counters).
//!
//! Writer handoff between runs is synchronized externally (thread
//! spawn/join), so "single writer" holds across a region's whole life.
//! Each region pairs its counters with a sequence word and uses the
//! classic single-writer seqlock recipe:
//!
//! * **Writer** (wait-free): load `seq` relaxed, store `seq+1` (odd,
//!   relaxed), `fence(Release)`, perform the counter stores (relaxed),
//!   store `seq+2` (even, Release). The release fence keeps the counter
//!   stores from becoming visible before the odd store; the final release
//!   store keeps them from becoming visible after the even store. There
//!   is no CAS and no retry: the writer never waits on readers.
//! * **Reader** (lock-free): load `seq` Acquire; if even, load the
//!   counters relaxed, `fence(Acquire)`, re-load `seq` relaxed; if
//!   unchanged the read is an atomically-consistent cut of the region,
//!   else retry. Torn reads are *detected and retried*, never returned.
//!
//! Write sections contain only atomic stores — nothing that can panic —
//! so a region can never be left with a stuck odd sequence.
//!
//! ## Why the invariant is exact at every cut
//!
//! `pushed` is not derived; it is a real counter bumped *in the same
//! write section* as the outcome that accounts for the packet:
//!
//! * worker region: `scored()`, `quarantined()` and
//!   `dropped_in_flight()` each bump their outcome counter *and*
//!   `pushed` in one section, so `pushed_w == scored + quarantined +
//!   dropped_w` holds in every consistent cut of the region;
//! * dispatch region: `shed()` bumps `dropped` *and* `pushed` in one
//!   section, so `pushed_d == dropped_d` in every cut.
//!
//! A snapshot combines one consistent cut per region, and the invariant
//! holds within each region's cut separately, so it holds for the sums.
//! The check is *non-vacuous*: without the seqlock a reader could observe
//! `scored` incremented but `pushed` not yet (they are distinct relaxed
//! stores), and a missed or doubled bump anywhere breaks the equality —
//! so [`TelemetrySnapshot::check_invariants`] genuinely validates both
//! the snapshot protocol and the instrumentation.
//!
//! ## `dispatched ≥ pushed`: worker-before-dispatch read order
//!
//! `dispatched` counts every packet the dispatcher addressed to the
//! shard (delivered *or* shed), bumped before the delivery attempt.
//! [`TelemetryHub::snapshot`] reads the **worker region first, then the
//! dispatch region**. Any packet in the worker cut's `pushed` was popped
//! from the ring, so its `dispatched` bump happened-before the worker's
//! counter bump (dispatcher program order + the ring's release/acquire
//! handoff), which happened-before our worker read — and therefore is
//! contained in the later dispatch cut. Within the dispatch cut itself,
//! `dispatched ≥ pushed_d + deliveries`. Hence `dispatched ≥ pushed_w +
//! pushed_d` at every snapshot, and `in_flight = dispatched - pushed` is
//! a meaningful gauge.
//!
//! Gauges (`live_flows`) are published values, not monotone counters;
//! `flows_peak` is monotone and raised in (or before) the same section
//! that raises `live_flows`, so `flows_peak ≥ live_flows` in every cut.
//!
//! ## Cost
//!
//! Each cell region is `#[repr(align(64))]` so the dispatcher's and each
//! worker's counters live on distinct cache lines with no false sharing.
//! An event is two relaxed stores to the (exclusively owned, cached)
//! sequence word plus one or two relaxed counter stores — a few ns, and
//! wait-free by construction. See `hist` for the latency-clock scheme
//! and the `timing` feature gate.

pub mod hist;
pub mod render;
pub mod wire;

pub use hist::{LapClock, Stage, StageHists, StageRecorder, StageSummary};

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

/// A single-writer counter cell. The writer uses plain load+store (no
/// RMW) — coherence is provided by the enclosing region's [`SeqLock`].
#[derive(Debug, Default)]
struct Counter(AtomicU64);

impl Counter {
    #[inline]
    fn add(&self, n: u64) {
        let v = self.0.load(Ordering::Relaxed);
        self.0.store(v.wrapping_add(n), Ordering::Relaxed);
    }

    #[inline]
    fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    fn raise(&self, v: u64) {
        if v > self.0.load(Ordering::Relaxed) {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    #[inline]
    fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Single-writer seqlock guarding one counter region (see the module
/// docs for the full recipe and ordering argument). The writer is
/// wait-free; readers retry until they observe a stable even sequence.
///
/// Contract: at most one thread writes the guarded region at a time
/// (enforced by the engine's thread structure, not by this type —
/// concurrent writers would corrupt the sequence pairing and readers
/// could then validate torn cuts).
#[derive(Debug, Default)]
struct SeqLock {
    seq: AtomicU64,
}

impl SeqLock {
    /// Runs `section` (atomic stores only — must not panic) as one
    /// write section. Wait-free.
    #[inline]
    fn write(&self, section: impl FnOnce()) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        section();
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Runs `read` until it observes a stable even sequence, returning
    /// an atomically-consistent cut of the region. Lock-free.
    #[inline]
    fn read<T>(&self, read: impl Fn() -> T) -> T {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 0 {
                let out = read();
                fence(Ordering::Acquire);
                if self.seq.load(Ordering::Relaxed) == s1 {
                    return out;
                }
            }
            std::hint::spin_loop();
        }
    }
}

/// Dispatch-loop counter region for one shard: every packet the
/// dispatcher addressed here is either delivered to the worker or shed
/// (`shed` accounts it as pushed+dropped on the spot).
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct DispatchCells {
    seq: SeqLock,
    dispatched: Counter,
    pushed: Counter,
    dropped: Counter,
    full_waits: Counter,
    degraded_windows: Counter,
}

/// One consistent cut of a [`DispatchCells`] region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchCounts {
    pub dispatched: u64,
    /// Packets this region fully accounted for (all of them shed — a
    /// delivered packet is accounted by the worker when it pops it).
    pub pushed: u64,
    pub dropped: u64,
    pub full_waits: u64,
    pub degraded_windows: u64,
}

impl DispatchCells {
    /// One packet addressed to this shard (call before the delivery
    /// attempt; see the module docs' `dispatched ≥ pushed` argument).
    #[inline]
    pub fn dispatched_inc(&self) {
        self.seq.write(|| self.dispatched.add(1));
    }

    /// One packet shed (overload policy, watchdog cutoff, or dead-worker
    /// ring drain): accounted as pushed+dropped in one write section.
    #[inline]
    pub fn shed(&self) {
        self.shed_many(1);
    }

    /// `n` packets shed at once (dead-worker ring drain).
    #[inline]
    pub fn shed_many(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.seq.write(|| {
            self.dropped.add(n);
            self.pushed.add(n);
        });
    }

    /// One backpressure stall (ring full, dispatcher had to wait).
    #[inline]
    pub fn full_wait(&self) {
        self.seq.write(|| self.full_waits.add(1));
    }

    /// One full→saturated transition under the degrade policy.
    #[inline]
    pub fn degraded_window(&self) {
        self.seq.write(|| self.degraded_windows.add(1));
    }

    /// Takes one consistent cut of this region.
    pub fn read(&self) -> DispatchCounts {
        self.seq.read(|| DispatchCounts {
            dispatched: self.dispatched.get(),
            pushed: self.pushed.get(),
            dropped: self.dropped.get(),
            full_waits: self.full_waits.get(),
            degraded_windows: self.degraded_windows.get(),
        })
    }
}

/// Worker-thread counter region for one shard: the outcome of every
/// packet the worker consumed, plus restart/close accounting and the
/// watchdog heartbeat.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct WorkerCells {
    seq: SeqLock,
    pushed: Counter,
    scored: Counter,
    quarantined: Counter,
    dropped: Counter,
    restarts: Counter,
    flows_closed: Counter,
    /// Progress signal for the stuck-shard watchdog. Deliberately
    /// *outside* the seqlock: it is read alone, has no pairing
    /// constraint, and must stay a single relaxed store per packet.
    heartbeat: Counter,
}

/// One consistent cut of a [`WorkerCells`] region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerCounts {
    /// Packets this region fully accounted for
    /// (`== scored + quarantined + dropped` in every cut).
    pub pushed: u64,
    pub scored: u64,
    pub quarantined: u64,
    pub dropped: u64,
    pub restarts: u64,
    pub flows_closed: u64,
}

impl WorkerCells {
    /// One packet scored.
    #[inline]
    pub fn scored(&self) {
        self.seq.write(|| {
            self.scored.add(1);
            self.pushed.add(1);
        });
    }

    /// One packet quarantined after a supervised scoring panic (which
    /// also rebuilds the flow table: restarts is bumped alongside).
    #[inline]
    pub fn quarantined(&self) {
        self.seq.write(|| {
            self.quarantined.add(1);
            self.restarts.add(1);
            self.pushed.add(1);
        });
    }

    /// One flow-table rebuild *not* tied to a quarantined packet (the
    /// end-of-stream flush panicked).
    #[inline]
    pub fn restart(&self) {
        self.seq.write(|| self.restarts.add(1));
    }

    /// One in-flight packet lost to a thread-killing panic.
    #[inline]
    pub fn dropped_in_flight(&self) {
        self.seq.write(|| {
            self.dropped.add(1);
            self.pushed.add(1);
        });
    }

    /// One flow finalized (any close reason).
    #[inline]
    pub fn flow_closed(&self) {
        self.seq.write(|| self.flows_closed.add(1));
    }

    /// Bumps the watchdog heartbeat (once per consumed packet).
    #[inline]
    pub fn beat(&self) {
        self.heartbeat.add(1);
    }

    /// Current heartbeat reading (relaxed; a progress signal only).
    #[inline]
    pub fn heartbeat(&self) -> u64 {
        self.heartbeat.get()
    }

    /// Takes one consistent cut of this region (heartbeat excluded —
    /// see [`WorkerCells::heartbeat`]).
    pub fn read(&self) -> WorkerCounts {
        self.seq.read(|| WorkerCounts {
            pushed: self.pushed.get(),
            scored: self.scored.get(),
            quarantined: self.quarantined.get(),
            dropped: self.dropped.get(),
            restarts: self.restarts.get(),
            flows_closed: self.flows_closed.get(),
        })
    }
}

/// Flow-table counter region: gauges (`live_flows`) and close-reason
/// counters, written by the thread that owns the `StreamScorer`. Shared
/// as an `Arc` so a scorer built inside a worker thread and the hub both
/// hold it, and so the counters survive the worker's death.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct StreamCells {
    seq: SeqLock,
    live_flows: Counter,
    flows_peak: Counter,
    evicted_idle: Counter,
    evicted_capacity: Counter,
    closed_tcp: Counter,
    length_capped: Counter,
    drained: Counter,
    time_wait_expired: Counter,
}

/// One consistent cut of a [`StreamCells`] region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamCounts {
    /// Currently tracked flows (a gauge: published flow-table size).
    pub live_flows: u64,
    /// Peak concurrently tracked flows (monotone high-water mark).
    pub flows_peak: u64,
    pub evicted_idle: u64,
    pub evicted_capacity: u64,
    pub closed_tcp: u64,
    pub length_capped: u64,
    pub drained: u64,
    pub time_wait_expired: u64,
}

impl StreamCells {
    /// A flow entered the table: publishes the new table size and raises
    /// the high-water mark in one section (`slab_len ≥ live`, so
    /// `flows_peak ≥ live_flows` holds in every cut).
    #[inline]
    pub fn flow_opened(&self, live: u64, slab_len: u64) {
        self.seq.write(|| {
            self.live_flows.set(live);
            self.flows_peak.raise(slab_len);
        });
    }

    /// Publishes the current flow-table size (call after removals and
    /// on scorer reset/attach).
    #[inline]
    pub fn live_sync(&self, live: u64) {
        self.seq.write(|| self.live_flows.set(live));
    }

    /// One flow evicted by the idle timeout.
    #[inline]
    pub fn evicted_idle(&self) {
        self.seq.write(|| self.evicted_idle.add(1));
    }

    /// One flow evicted to admit a new one at capacity.
    #[inline]
    pub fn evicted_capacity(&self) {
        self.seq.write(|| self.evicted_capacity.add(1));
    }

    /// One flow finalized by TCP teardown.
    #[inline]
    pub fn closed_tcp(&self) {
        self.seq.write(|| self.closed_tcp.add(1));
    }

    /// One flow finalized at the per-flow length cap.
    #[inline]
    pub fn length_capped(&self) {
        self.seq.write(|| self.length_capped.add(1));
    }

    /// One flow flushed by the end-of-stream drain.
    #[inline]
    pub fn drained(&self) {
        self.seq.write(|| self.drained.add(1));
    }

    /// One TIME_WAIT linger expired on the wheel.
    #[inline]
    pub fn time_wait_expired(&self) {
        self.seq.write(|| self.time_wait_expired.add(1));
    }

    /// Takes one consistent cut of this region.
    pub fn read(&self) -> StreamCounts {
        self.seq.read(|| StreamCounts {
            live_flows: self.live_flows.get(),
            flows_peak: self.flows_peak.get(),
            evicted_idle: self.evicted_idle.get(),
            evicted_capacity: self.evicted_capacity.get(),
            closed_tcp: self.closed_tcp.get(),
            length_capped: self.length_capped.get(),
            drained: self.drained.get(),
            time_wait_expired: self.time_wait_expired.get(),
        })
    }
}

/// One shard's full set of telemetry regions.
#[derive(Debug, Default)]
pub struct ShardCells {
    /// Written by the dispatch loop.
    pub dispatch: DispatchCells,
    /// Written by the shard's worker thread.
    pub worker: WorkerCells,
    /// Written by the owner of the shard's `StreamScorer` (shared so the
    /// scorer can be built inside the worker thread).
    pub stream: Arc<StreamCells>,
    /// Per-stage latency histograms (internally thread-safe).
    pub stages: Arc<StageHists>,
}

/// The process-wide telemetry plane: one [`ShardCells`] per shard,
/// lifetime-cumulative (counters are never reset; per-run deltas are the
/// caller's subtraction of two snapshots).
#[derive(Debug)]
pub struct TelemetryHub {
    shards: Vec<ShardCells>,
}

impl TelemetryHub {
    /// Builds a hub for `shards` shards (all counters zero).
    pub fn new(shards: usize) -> Self {
        TelemetryHub {
            shards: (0..shards).map(|_| ShardCells::default()).collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard's cell regions.
    pub fn shard(&self, i: usize) -> &ShardCells {
        &self.shards[i]
    }

    /// Takes a coherent snapshot from any thread while packets flow.
    /// Per shard, the worker region is read *before* the dispatch region
    /// (see the module docs: this is what makes `dispatched ≥ pushed`
    /// certain at every snapshot).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let shards = self
            .shards
            .iter()
            .map(|c| {
                let w = c.worker.read();
                let heartbeat = c.worker.heartbeat();
                let d = c.dispatch.read();
                let st = c.stream.read();
                let pushed = w.pushed + d.pushed;
                ShardSnapshot {
                    pushed,
                    scored: w.scored,
                    dropped: w.dropped + d.dropped,
                    quarantined: w.quarantined,
                    dispatched: d.dispatched,
                    in_flight: d.dispatched.saturating_sub(pushed),
                    restarts: w.restarts,
                    flows_closed: w.flows_closed,
                    full_waits: d.full_waits,
                    degraded_windows: d.degraded_windows,
                    heartbeat,
                    live_flows: st.live_flows,
                    flows_peak: st.flows_peak,
                    evicted_idle: st.evicted_idle,
                    evicted_capacity: st.evicted_capacity,
                    closed_tcp: st.closed_tcp,
                    length_capped: st.length_capped,
                    drained: st.drained,
                    time_wait_expired: st.time_wait_expired,
                    stages: c.stages.summaries(),
                }
            })
            .collect();
        TelemetrySnapshot { shards }
    }
}

/// One shard's counters at a snapshot instant. All counters are
/// lifetime-cumulative and monotone except the gauges `in_flight` and
/// `live_flows`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Packets fully accounted for: `scored + dropped + quarantined`,
    /// exactly, at every snapshot instant.
    pub pushed: u64,
    pub scored: u64,
    pub dropped: u64,
    pub quarantined: u64,
    /// Packets the dispatcher addressed to this shard (`≥ pushed`).
    pub dispatched: u64,
    /// Gauge: `dispatched - pushed` — packets in the ring or being
    /// scored right now.
    pub in_flight: u64,
    pub restarts: u64,
    pub flows_closed: u64,
    pub full_waits: u64,
    pub degraded_windows: u64,
    pub heartbeat: u64,
    /// Gauge: currently tracked flows.
    pub live_flows: u64,
    pub flows_peak: u64,
    pub evicted_idle: u64,
    pub evicted_capacity: u64,
    pub closed_tcp: u64,
    pub length_capped: u64,
    pub drained: u64,
    pub time_wait_expired: u64,
    /// Per-stage latency summaries, indexed by [`Stage`] discriminant.
    pub stages: [StageSummary; hist::STAGES],
}

impl ShardSnapshot {
    /// The monotone counters, name + value, in a fixed order (used by
    /// the monotonicity check and the wire format; gauges excluded).
    pub fn counters(&self) -> [(&'static str, u64); 17] {
        [
            ("pushed", self.pushed),
            ("scored", self.scored),
            ("dropped", self.dropped),
            ("quarantined", self.quarantined),
            ("dispatched", self.dispatched),
            ("restarts", self.restarts),
            ("flows_closed", self.flows_closed),
            ("full_waits", self.full_waits),
            ("degraded_windows", self.degraded_windows),
            ("heartbeat", self.heartbeat),
            ("flows_peak", self.flows_peak),
            ("evicted_idle", self.evicted_idle),
            ("evicted_capacity", self.evicted_capacity),
            ("closed_tcp", self.closed_tcp),
            ("length_capped", self.length_capped),
            ("drained", self.drained),
            ("time_wait_expired", self.time_wait_expired),
        ]
    }
}

/// A coherent cut of every shard's counters, taken mid-run or at rest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardSnapshot>,
}

impl TelemetrySnapshot {
    /// Verifies the accounting invariants every snapshot must satisfy,
    /// mid-run or at rest:
    ///
    /// * `pushed == scored + dropped + quarantined` (exact, per shard);
    /// * `dispatched ≥ pushed`;
    /// * `flows_peak ≥ live_flows`.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, s) in self.shards.iter().enumerate() {
            let outcomes = s.scored + s.dropped + s.quarantined;
            if s.pushed != outcomes {
                return Err(format!(
                    "shard {i}: pushed {} != scored {} + dropped {} + quarantined {}",
                    s.pushed, s.scored, s.dropped, s.quarantined
                ));
            }
            if s.dispatched < s.pushed {
                return Err(format!(
                    "shard {i}: dispatched {} < pushed {}",
                    s.dispatched, s.pushed
                ));
            }
            if s.flows_peak < s.live_flows {
                return Err(format!(
                    "shard {i}: flows_peak {} < live_flows {}",
                    s.flows_peak, s.live_flows
                ));
            }
        }
        Ok(())
    }

    /// Verifies that every monotone counter (gauges excluded) moved
    /// forward — or stood still — between two snapshots of the same hub.
    pub fn check_monotonic(earlier: &Self, later: &Self) -> Result<(), String> {
        if earlier.shards.len() != later.shards.len() {
            return Err(format!(
                "shard count changed: {} -> {}",
                earlier.shards.len(),
                later.shards.len()
            ));
        }
        for (i, (a, b)) in earlier.shards.iter().zip(&later.shards).enumerate() {
            for ((name, va), (_, vb)) in a.counters().iter().zip(b.counters().iter()) {
                if vb < va {
                    return Err(format!("shard {i}: {name} went backwards: {va} -> {vb}"));
                }
            }
            for (stage, (sa, sb)) in a.stages.iter().zip(b.stages.iter()).enumerate() {
                if sb.count < sa.count || sb.max_ns < sa.max_ns {
                    return Err(format!("shard {i}: stage {stage} histogram went backwards"));
                }
            }
        }
        Ok(())
    }

    /// Sums a counter across shards (convenience for renderers/benches).
    pub fn total(&self, f: impl Fn(&ShardSnapshot) -> u64) -> u64 {
        self.shards.iter().map(f).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn event_methods_keep_the_accounting_exact() {
        let hub = TelemetryHub::new(2);
        let c = hub.shard(0);
        c.dispatch.dispatched_inc();
        c.dispatch.dispatched_inc();
        c.dispatch.dispatched_inc();
        c.worker.scored();
        c.worker.quarantined();
        c.dispatch.shed();
        c.dispatch.full_wait();
        c.worker.flow_closed();
        c.worker.beat();

        let snap = hub.snapshot();
        snap.check_invariants().expect("invariants");
        let s = &snap.shards[0];
        assert_eq!(s.dispatched, 3);
        assert_eq!(s.pushed, 3);
        assert_eq!(s.scored, 1);
        assert_eq!(s.quarantined, 1);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.restarts, 1, "quarantine implies a restart");
        assert_eq!(s.full_waits, 1);
        assert_eq!(s.flows_closed, 1);
        assert_eq!(s.heartbeat, 1);
        assert_eq!(snap.shards[1], ShardSnapshot::default());
    }

    #[test]
    fn gauges_track_the_flow_table() {
        let hub = TelemetryHub::new(1);
        let st = &hub.shard(0).stream;
        st.flow_opened(1, 1);
        st.flow_opened(2, 2);
        st.closed_tcp();
        st.live_sync(1);
        let s = hub.snapshot();
        s.check_invariants().expect("invariants");
        assert_eq!(s.shards[0].live_flows, 1);
        assert_eq!(s.shards[0].flows_peak, 2);
        assert_eq!(s.shards[0].closed_tcp, 1);
    }

    #[test]
    fn in_flight_counts_undelivered_packets() {
        let hub = TelemetryHub::new(1);
        let c = hub.shard(0);
        for _ in 0..5 {
            c.dispatch.dispatched_inc();
        }
        c.worker.scored();
        c.worker.scored();
        c.dispatch.shed();
        let s = hub.snapshot();
        s.check_invariants().expect("invariants");
        assert_eq!(s.shards[0].in_flight, 2);
    }

    #[test]
    fn invariant_check_rejects_cooked_books() {
        let mut snap = TelemetrySnapshot {
            shards: vec![ShardSnapshot::default()],
        };
        snap.shards[0].pushed = 1;
        let err = snap.check_invariants().unwrap_err();
        assert!(err.contains("pushed 1"), "{err}");

        snap.shards[0].scored = 1;
        snap.shards[0].dispatched = 1;
        snap.check_invariants().expect("books balance again");

        snap.shards[0].live_flows = 3;
        let err = snap.check_invariants().unwrap_err();
        assert!(err.contains("flows_peak"), "{err}");
    }

    #[test]
    fn monotonicity_check_catches_regressing_counters() {
        let hub = TelemetryHub::new(1);
        let a = hub.snapshot();
        hub.shard(0).worker.scored();
        let b = hub.snapshot();
        TelemetrySnapshot::check_monotonic(&a, &b).expect("forward is fine");
        let err = TelemetrySnapshot::check_monotonic(&b, &a).unwrap_err();
        assert!(err.contains("went backwards"), "{err}");
    }

    /// A writer thread hammers events while this thread snapshots: every
    /// snapshot must satisfy the invariants and be monotone w.r.t. the
    /// previous one. This is the in-crate version of the engine-level
    /// mid-run proptest, and it fails (probabilistically) if the seqlock
    /// is removed: `scored` and `pushed` are distinct relaxed stores a
    /// torn read would split.
    #[test]
    fn snapshots_stay_coherent_under_concurrent_writes() {
        let hub = Arc::new(TelemetryHub::new(1));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let hub = Arc::clone(&hub);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let c = hub.shard(0);
                let mut live = 0u64;
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    c.dispatch.dispatched_inc();
                    match n % 4 {
                        0 => c.worker.scored(),
                        1 => c.worker.quarantined(),
                        2 => c.dispatch.shed(),
                        _ => c.worker.dropped_in_flight(),
                    }
                    if n.is_multiple_of(3) {
                        live += 1;
                        c.stream.flow_opened(live, live);
                    } else if live > 0 {
                        live -= 1;
                        c.stream.closed_tcp();
                        c.stream.live_sync(live);
                    }
                    c.worker.beat();
                    n += 1;
                }
                n
            })
        };

        let mut prev = hub.snapshot();
        for _ in 0..20_000 {
            let snap = hub.snapshot();
            snap.check_invariants().expect("mid-run invariants");
            TelemetrySnapshot::check_monotonic(&prev, &snap).expect("monotone");
            prev = snap;
        }
        stop.store(true, Ordering::Relaxed);
        let total = writer.join().expect("writer");

        let fin = hub.snapshot();
        fin.check_invariants().expect("final invariants");
        assert_eq!(fin.shards[0].dispatched, total);
        assert_eq!(fin.shards[0].pushed, total, "all packets accounted");
    }
}
