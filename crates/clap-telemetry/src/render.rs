//! Human-readable renderers: a `top`-style text view of a
//! [`TelemetrySnapshot`] and a classic hexdump, shared by the capture
//! head/tail view and the exported-telemetry-stream dumper.

use crate::hist::Stage;
use crate::TelemetrySnapshot;
use std::fmt::Write as _;

/// Renders a snapshot as a fixed-width per-shard table with totals,
/// followed by the non-empty stage-latency summaries — the `clap-top`
/// view of a running engine.
pub fn render_snapshot(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>5} {:>10} {:>10} {:>8} {:>8} {:>9} {:>7} {:>7} {:>7} {:>6} {:>8}",
        "shard",
        "pushed",
        "scored",
        "dropped",
        "quarant",
        "in-flight",
        "live",
        "peak",
        "closed",
        "waits",
        "restarts"
    );
    let mut row = |label: String, s: &crate::ShardSnapshot| {
        let _ = writeln!(
            out,
            "{:>5} {:>10} {:>10} {:>8} {:>8} {:>9} {:>7} {:>7} {:>7} {:>6} {:>8}",
            label,
            s.pushed,
            s.scored,
            s.dropped,
            s.quarantined,
            s.in_flight,
            s.live_flows,
            s.flows_peak,
            s.flows_closed,
            s.full_waits,
            s.restarts
        );
    };
    let mut total = crate::ShardSnapshot::default();
    for (i, s) in snap.shards.iter().enumerate() {
        row(i.to_string(), s);
        total.pushed += s.pushed;
        total.scored += s.scored;
        total.dropped += s.dropped;
        total.quarantined += s.quarantined;
        total.in_flight += s.in_flight;
        total.live_flows += s.live_flows;
        total.flows_peak += s.flows_peak;
        total.flows_closed += s.flows_closed;
        total.full_waits += s.full_waits;
        total.restarts += s.restarts;
    }
    if snap.shards.len() > 1 {
        row("TOTAL".to_string(), &total);
    }

    let mut stage_lines = String::new();
    for (i, s) in snap.shards.iter().enumerate() {
        for stage in Stage::ALL {
            let sum = s.stages[stage.index()];
            if sum.count == 0 {
                continue;
            }
            let mean = sum.sum_ns / sum.count;
            let _ = writeln!(
                stage_lines,
                "  shard {i:>2}  {:<9} n={:<8} p50={:<8} p99={:<8} max={:<10} mean={}",
                stage.name(),
                sum.count,
                sum.p50_ns,
                sum.p99_ns,
                sum.max_ns,
                mean
            );
        }
    }
    if !stage_lines.is_empty() {
        out.push_str("stage latencies (sampled, ns):\n");
        out.push_str(&stage_lines);
    }
    out
}

/// Classic 16-bytes-per-row hexdump with an ASCII gutter. `base` offsets
/// the printed addresses, so a windowed dump (e.g. the tail of a
/// capture) shows its true file offsets.
pub fn hexdump(bytes: &[u8], base: usize) -> String {
    let mut out = String::new();
    for (row, chunk) in bytes.chunks(16).enumerate() {
        let _ = write!(out, "{:08x}  ", base + row * 16);
        for i in 0..16 {
            match chunk.get(i) {
                Some(b) => {
                    let _ = write!(out, "{b:02x} ");
                }
                None => out.push_str("   "),
            }
            if i == 7 {
                out.push(' ');
            }
        }
        out.push(' ');
        out.push('|');
        for b in chunk {
            out.push(if b.is_ascii_graphic() || *b == b' ' {
                *b as char
            } else {
                '.'
            });
        }
        out.push('|');
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ShardSnapshot, TelemetrySnapshot};

    #[test]
    fn snapshot_render_has_rows_and_totals() {
        let mut snap = TelemetrySnapshot {
            shards: vec![ShardSnapshot::default(); 2],
        };
        snap.shards[0].pushed = 10;
        snap.shards[0].scored = 10;
        snap.shards[1].pushed = 5;
        snap.shards[1].scored = 4;
        snap.shards[1].dropped = 1;
        snap.shards[1].stages[Stage::Gru.index()].count = 3;
        snap.shards[1].stages[Stage::Gru.index()].sum_ns = 3000;
        snap.shards[1].stages[Stage::Gru.index()].max_ns = 1500;
        let text = render_snapshot(&snap);
        assert!(text.contains("shard"), "{text}");
        assert!(text.contains("TOTAL"), "{text}");
        assert!(text.contains("15"), "summed pushed: {text}");
        assert!(text.contains("gru"), "{text}");
        assert!(text.contains("mean=1000"), "{text}");
    }

    #[test]
    fn single_shard_render_skips_totals() {
        let snap = TelemetrySnapshot {
            shards: vec![ShardSnapshot::default()],
        };
        assert!(!render_snapshot(&snap).contains("TOTAL"));
    }

    #[test]
    fn hexdump_rows_offsets_and_ascii() {
        let bytes: Vec<u8> = (0u8..40).collect();
        let dump = hexdump(&bytes, 0x100);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("00000100  00 01 02"), "{}", lines[0]);
        assert!(lines[1].starts_with("00000110"), "{}", lines[1]);
        assert!(lines[0].contains('|'), "{}", lines[0]);
        let text = hexdump(b"Hi!\x01", 0);
        assert!(text.contains("|Hi!.|"), "{text}");
    }
}
