//! Per-stage latency histograms: fixed-bucket log2 histograms with no
//! allocation and no locks, plus the sampling clock that feeds them from
//! the scoring hot path.
//!
//! # Bucket scheme
//!
//! Each [`Histogram`] is 64 relaxed `AtomicU64` buckets; a sample of `n`
//! nanoseconds lands in bucket `floor(log2(max(n, 1)))`, i.e. bucket `b`
//! covers `[2^b, 2^(b+1))` ns (bucket 0 also absorbs 0 ns). 64 buckets
//! cover the full `u64` nanosecond range, so recording never saturates
//! or allocates. Alongside the buckets sit `count`, `sum` and `max`
//! (`fetch_max`), all relaxed: histograms are statistics, not
//! synchronization, and tolerate cross-field skew.
//!
//! Quantiles are reconstructed by walking the cumulative bucket counts
//! and reporting the matched bucket's *lower bound* — a ≤2× under-
//! estimate by construction, which is the usual log2-histogram deal and
//! plenty for p50/p99 trend lines.
//!
//! # Sampling and the `timing` feature
//!
//! Counters are always on; what the `timing` feature gates is the
//! *clock reads*. With `timing` enabled, [`StageRecorder::sample`]
//! starts a [`LapClock`] for one packet in [`SAMPLE_EVERY`], and each
//! [`LapClock::lap`] records the nanoseconds since the previous lap
//! under the given [`Stage`]. Without the feature, `sample` compiles to
//! an `Option` load and returns `None` — call sites are identical in
//! both builds and the hot path pays one predictable branch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
#[cfg(feature = "timing")]
use std::time::Instant;

/// Pipeline stages timed by the stage histograms, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Wire bytes → [`Packet`] (timed by the capture replay harness).
    ///
    /// [`Packet`]: ../../net_packet/struct.Packet.html
    Parse = 0,
    /// Per-packet feature extraction + TCP state tracking.
    Extract = 1,
    /// GRU recurrence step (single packet or micro-batch round).
    Gru = 2,
    /// Autoencoder window reconstruction + error scoring.
    AeWindow = 3,
    /// End-of-run verdict merge (sharded dispatcher only).
    Merge = 4,
}

/// Number of [`Stage`]s (array dimension for per-stage storage).
pub const STAGES: usize = 5;

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; STAGES] = [
        Stage::Parse,
        Stage::Extract,
        Stage::Gru,
        Stage::AeWindow,
        Stage::Merge,
    ];

    /// Stable index (the discriminant).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable stage name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Extract => "extract",
            Stage::Gru => "gru",
            Stage::AeWindow => "ae-window",
            Stage::Merge => "merge",
        }
    }
}

/// Number of log2 buckets (covers the whole u64 nanosecond range).
pub const BUCKETS: usize = 64;

/// Record one sampled packet in every [`SAMPLE_EVERY`] (power of two).
pub const SAMPLE_EVERY: u64 = 32;

/// A lock-free fixed-bucket log2 histogram (see the module docs for the
/// bucket scheme). Recording is a handful of relaxed RMWs; it is safe
/// from any number of threads.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a sample: `floor(log2(max(n, 1)))`.
#[inline]
fn bucket_of(nanos: u64) -> usize {
    (63 - nanos.max(1).leading_zeros()) as usize
}

/// Lower bound of a bucket in nanoseconds (bucket 0 starts at 0).
#[inline]
fn bucket_floor(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << b
    }
}

impl Histogram {
    /// Records one sample of `nanos` nanoseconds.
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The quantile's bucket lower bound in ns (0 if empty), `q` in
    /// `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let rank = ((count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_floor(b);
            }
        }
        // Racing recorders can leave `count` ahead of the bucket sums;
        // the highest non-empty bucket is the honest answer then.
        bucket_floor(
            self.buckets
                .iter()
                .rposition(|b| b.load(Ordering::Relaxed) > 0)
                .unwrap_or(0),
        )
    }

    /// Condenses the histogram into a [`StageSummary`].
    pub fn summary(&self) -> StageSummary {
        StageSummary {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum.load(Ordering::Relaxed),
            p50_ns: self.quantile(0.50),
            p99_ns: self.quantile(0.99),
            max_ns: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Condensed view of one stage's histogram at a snapshot instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (ns) — `sum_ns / count` is the mean.
    pub sum_ns: u64,
    /// Median bucket lower bound (ns).
    pub p50_ns: u64,
    /// 99th-percentile bucket lower bound (ns).
    pub p99_ns: u64,
    /// Largest recorded sample (ns).
    pub max_ns: u64,
}

/// One histogram per [`Stage`] — a shard's full latency profile.
#[derive(Debug, Default)]
pub struct StageHists {
    hists: [Histogram; STAGES],
}

impl StageHists {
    /// Records one sample under `stage`.
    #[inline]
    pub fn record(&self, stage: Stage, nanos: u64) {
        self.hists[stage.index()].record(nanos);
    }

    /// The histogram for one stage.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.hists[stage.index()]
    }

    /// Summaries for all stages, indexed by [`Stage`] discriminant.
    pub fn summaries(&self) -> [StageSummary; STAGES] {
        std::array::from_fn(|i| self.hists[i].summary())
    }
}

/// The scorer-side sampling state: an optional attachment to a shard's
/// [`StageHists`] plus the 1-in-[`SAMPLE_EVERY`] tick. Owned (not
/// shared) by one scorer, so ticking is plain field arithmetic.
#[derive(Debug, Default)]
pub struct StageRecorder {
    hists: Option<Arc<StageHists>>,
    #[cfg(feature = "timing")]
    tick: u64,
}

impl StageRecorder {
    /// A recorder with no attachment: `sample` always returns `None`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches the recorder to a shard's histograms.
    pub fn attach(&mut self, hists: Arc<StageHists>) {
        self.hists = Some(hists);
    }

    /// The attached histograms, if any.
    pub fn hists(&self) -> Option<&Arc<StageHists>> {
        self.hists.as_ref()
    }

    /// Per-packet sampling decision: starts a [`LapClock`] for one
    /// packet in [`SAMPLE_EVERY`] when attached (and the `timing`
    /// feature is on), `None` otherwise.
    #[cfg(feature = "timing")]
    #[inline]
    pub fn sample(&mut self) -> Option<LapClock<'_>> {
        let hists = self.hists.as_deref()?;
        self.tick = self.tick.wrapping_add(1);
        if self.tick & (SAMPLE_EVERY - 1) != 0 {
            return None;
        }
        Some(LapClock {
            last: Instant::now(),
            hists,
        })
    }

    /// Without the `timing` feature the clock is compiled out: one
    /// `Option` load and a branch, nothing else.
    #[cfg(not(feature = "timing"))]
    #[inline]
    pub fn sample(&mut self) -> Option<LapClock<'_>> {
        let _ = self.hists.as_ref()?;
        None
    }

    /// Unconditional (non-sampled) clock for once-per-batch timing —
    /// `Some` whenever attached and `timing` is on.
    #[inline]
    pub fn start(&self) -> Option<LapClock<'_>> {
        #[cfg(feature = "timing")]
        {
            let hists = self.hists.as_deref()?;
            Some(LapClock {
                last: Instant::now(),
                hists,
            })
        }
        #[cfg(not(feature = "timing"))]
        {
            let _ = self.hists.as_ref()?;
            None
        }
    }
}

/// A running stage clock: each [`lap`](LapClock::lap) records the time
/// since the previous lap under the given stage and restarts the clock.
/// Without the `timing` feature this type is never constructed (both
/// `sample` and `start` return `None`) but stays defined so call sites
/// compile identically.
#[derive(Debug)]
pub struct LapClock<'a> {
    #[cfg(feature = "timing")]
    last: Instant,
    #[cfg(feature = "timing")]
    hists: &'a StageHists,
    #[cfg(not(feature = "timing"))]
    _hists: std::marker::PhantomData<&'a StageHists>,
}

impl LapClock<'_> {
    /// Records the nanoseconds since the previous lap under `stage`.
    #[inline]
    pub fn lap(&mut self, stage: Stage) {
        #[cfg(feature = "timing")]
        {
            let now = Instant::now();
            self.hists
                .record(stage, (now - self.last).as_nanos() as u64);
            self.last = now;
        }
        #[cfg(not(feature = "timing"))]
        {
            let _ = stage;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(10), 1024);
    }

    #[test]
    fn quantiles_report_bucket_floors() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for _ in 0..98 {
            h.record(100); // bucket 6: [64, 128)
        }
        h.record(1 << 20);
        h.record(1 << 21);
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 64);
        assert_eq!(s.p99_ns, 1 << 20);
        assert_eq!(s.max_ns, 1 << 21);
        assert_eq!(s.sum_ns, 98 * 100 + (1 << 20) + (1 << 21));
    }

    #[test]
    fn stage_hists_index_by_stage() {
        let sh = StageHists::default();
        sh.record(Stage::Gru, 500);
        sh.record(Stage::Gru, 700);
        sh.record(Stage::Merge, 9);
        let sums = sh.summaries();
        assert_eq!(sums[Stage::Gru.index()].count, 2);
        assert_eq!(sums[Stage::Merge.index()].count, 1);
        assert_eq!(sums[Stage::Parse.index()].count, 0);
        assert_eq!(Stage::ALL.len(), STAGES);
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn recorder_without_attachment_is_inert() {
        let mut r = StageRecorder::new();
        for _ in 0..100 {
            assert!(r.sample().is_none());
        }
        assert!(r.start().is_none());
    }

    #[cfg(feature = "timing")]
    #[test]
    fn recorder_samples_one_in_every_window() {
        let mut r = StageRecorder::new();
        let hists = Arc::new(StageHists::default());
        r.attach(Arc::clone(&hists));
        let mut clocks = 0;
        for _ in 0..(SAMPLE_EVERY * 4) {
            if let Some(mut clock) = r.sample() {
                clocks += 1;
                clock.lap(Stage::Extract);
                clock.lap(Stage::Gru);
            }
        }
        assert_eq!(clocks, 4);
        let sums = hists.summaries();
        assert_eq!(sums[Stage::Extract.index()].count, 4);
        assert_eq!(sums[Stage::Gru.index()].count, 4);
    }
}
