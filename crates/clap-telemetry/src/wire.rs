//! The introspection wire format: a compact length-prefixed binary
//! framing for verdict records, telemetry snapshots and conntrack-style
//! flow-table dumps, written to any `io::Write` sink and read back with
//! zero-copy accessor views (the same hand-rolled idiom as
//! `net-packet::wire` — fixed offsets, big-endian, no codegen).
//!
//! # Frame layout
//!
//! Every frame is an 8-byte header followed by `payload_len` bytes:
//!
//! | offset | size | field        | value                                 |
//! |--------|------|--------------|---------------------------------------|
//! | 0      | 1    | version      | [`WIRE_VERSION`] (= 1)                |
//! | 1      | 1    | kind         | 1 verdict, 2 snapshot, 3 flow         |
//! | 2      | 2    | reserved     | 0 (readers reject anything else)      |
//! | 4      | 4    | payload_len  | big-endian payload byte count         |
//!
//! # Verdict payload ([`VERDICT_LEN`] = 61 bytes)
//!
//! | offset | size | field       | encoding                               |
//! |--------|------|-------------|----------------------------------------|
//! | 0      | 1    | v6          | 0 = IPv4 (first 4 addr bytes), 1 = IPv6 |
//! | 1      | 1    | proto       | IP protocol number                     |
//! | 2      | 16   | client addr | network order, zero-padded for v4      |
//! | 18     | 2    | client port | big-endian                             |
//! | 20     | 16   | server addr |                                        |
//! | 36     | 2    | server port |                                        |
//! | 38     | 8    | arrival     | first-packet arrival tag               |
//! | 46     | 4    | packets     | packets in the flow incarnation        |
//! | 50     | 1    | reason      | `CloseReason` discriminant             |
//! | 51     | 2    | shard       | scoring shard index                    |
//! | 53     | 4    | score       | f32 bits, big-endian (bit-exact)       |
//! | 57     | 4    | peak_packet | packet index of the peak window        |
//!
//! # Flow payload ([`FLOW_LEN`] = 84 bytes)
//!
//! | offset | size | field     | encoding                                 |
//! |--------|------|-----------|------------------------------------------|
//! | 0..38  |      | identity  | same v6/proto/endpoints block as above   |
//! | 38     | 1    | state     | `TcpState` discriminant, 255 = non-TCP   |
//! | 39     | 1    | lingering | 1 = TIME_WAIT linger                     |
//! | 40     | 8    | age       | f64 bits: seconds since first packet     |
//! | 48     | 8    | idle      | f64 bits: seconds since last packet      |
//! | 56     | 8    | packets   |                                          |
//! | 64     | 8    | bytes     | wire bytes ingested                      |
//! | 72     | 4    | score     | current anomaly score (f32 bits)         |
//! | 76     | 8    | arrival   | first-packet arrival tag                 |
//!
//! # Snapshot payload (2 + shards × [`SHARD_BLOCK_LEN`] bytes)
//!
//! A big-endian u16 shard count, then per shard: the 19
//! [`ShardSnapshot`] counters in declaration order (8 bytes each), then
//! [`STAGES`] stage blocks of `count, sum_ns, p50_ns, p99_ns, max_ns`
//! (8 bytes each). Decoding reproduces the exact [`TelemetrySnapshot`].

use crate::hist::{StageSummary, STAGES};
use crate::{ShardSnapshot, TelemetrySnapshot};
use std::io::{self, Write};

/// Format version stamped into (and required of) every frame header.
pub const WIRE_VERSION: u8 = 1;

/// Frame header length in bytes.
pub const HEADER_LEN: usize = 8;

/// Verdict payload length in bytes.
pub const VERDICT_LEN: usize = 61;

/// Flow-dump payload length in bytes.
pub const FLOW_LEN: usize = 84;

/// Counters per shard in a snapshot payload.
const SHARD_COUNTERS: usize = 19;

/// u64 fields per stage block in a snapshot payload.
const STAGE_FIELDS: usize = 5;

/// Per-shard block length inside a snapshot payload.
pub const SHARD_BLOCK_LEN: usize = (SHARD_COUNTERS + STAGES * STAGE_FIELDS) * 8;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    Verdict = 1,
    Snapshot = 2,
    Flow = 3,
}

impl FrameKind {
    fn from_u8(k: u8) -> Option<FrameKind> {
        match k {
            1 => Some(FrameKind::Verdict),
            2 => Some(FrameKind::Snapshot),
            3 => Some(FrameKind::Flow),
            _ => None,
        }
    }
}

/// Typed decode failure. Reads never panic on foreign bytes: every
/// malformed input maps to one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the header or the declared payload requires.
    Truncated { need: usize, have: usize },
    /// Unknown format version.
    BadVersion(u8),
    /// Unknown frame kind.
    BadKind(u8),
    /// Reserved header bytes were not zero.
    BadReserved(u16),
    /// Payload length inconsistent with the frame kind.
    BadLength { kind: FrameKind, len: usize },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadReserved(r) => write!(f, "reserved header bytes nonzero ({r:#06x})"),
            WireError::BadLength { kind, len } => {
                write!(f, "bad payload length {len} for {kind:?} frame")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// One exported verdict (a finalized flow), decoupled from the engine's
/// in-memory types so the wire crate stays dependency-free: addresses
/// are raw 16-byte network-order blocks (IPv4 in the first 4 bytes,
/// `v6 == false`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerdictRecord {
    pub v6: bool,
    pub proto: u8,
    pub client_addr: [u8; 16],
    pub client_port: u16,
    pub server_addr: [u8; 16],
    pub server_port: u16,
    /// Arrival tag of the flow incarnation's first packet.
    pub arrival: u64,
    /// Packets scored in this incarnation.
    pub packets: u32,
    /// `CloseReason` discriminant.
    pub reason: u8,
    /// Shard that scored the flow.
    pub shard: u16,
    /// Final anomaly score (bit-exact across the wire).
    pub score: f32,
    /// Packet index of the peak-scoring window.
    pub peak_packet: u32,
}

/// One live flow-table entry, conntrack style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowRecord {
    pub v6: bool,
    pub proto: u8,
    pub client_addr: [u8; 16],
    pub client_port: u16,
    pub server_addr: [u8; 16],
    pub server_port: u16,
    /// `TcpState` discriminant; 255 for a non-TCP flow.
    pub state: u8,
    /// TIME_WAIT linger (verdict already emitted, timer running).
    pub lingering: bool,
    /// Seconds since the flow's first packet (stream clock).
    pub age: f64,
    /// Seconds since the flow's last packet.
    pub idle: f64,
    pub packets: u64,
    /// Wire bytes ingested.
    pub bytes: u64,
    /// Current anomaly score over the windows seen so far.
    pub score: f32,
    /// Arrival tag of the first packet.
    pub arrival: u64,
}

#[inline]
fn be16(b: &[u8], o: usize) -> u16 {
    u16::from_be_bytes([b[o], b[o + 1]])
}

#[inline]
fn be32(b: &[u8], o: usize) -> u32 {
    u32::from_be_bytes([b[o], b[o + 1], b[o + 2], b[o + 3]])
}

#[inline]
fn be64(b: &[u8], o: usize) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&b[o..o + 8]);
    u64::from_be_bytes(raw)
}

#[inline]
fn put16(b: &mut [u8], o: usize, v: u16) {
    b[o..o + 2].copy_from_slice(&v.to_be_bytes());
}

#[inline]
fn put32(b: &mut [u8], o: usize, v: u32) {
    b[o..o + 4].copy_from_slice(&v.to_be_bytes());
}

#[inline]
fn put64(b: &mut [u8], o: usize, v: u64) {
    b[o..o + 8].copy_from_slice(&v.to_be_bytes());
}

fn put_header(buf: &mut [u8], kind: FrameKind, payload_len: usize) {
    buf[0] = WIRE_VERSION;
    buf[1] = kind as u8;
    put16(buf, 2, 0);
    put32(buf, 4, payload_len as u32);
}

/// Encodes the shared 38-byte identity block (offsets 0..38).
fn put_identity(
    b: &mut [u8],
    v6: bool,
    proto: u8,
    client_addr: &[u8; 16],
    client_port: u16,
    server_addr: &[u8; 16],
    server_port: u16,
) {
    b[0] = v6 as u8;
    b[1] = proto;
    b[2..18].copy_from_slice(client_addr);
    put16(b, 18, client_port);
    b[20..36].copy_from_slice(server_addr);
    put16(b, 36, server_port);
}

/// Writes one verdict frame.
pub fn write_verdict<W: Write>(w: &mut W, r: &VerdictRecord) -> io::Result<()> {
    let mut buf = [0u8; HEADER_LEN + VERDICT_LEN];
    put_header(&mut buf, FrameKind::Verdict, VERDICT_LEN);
    let p = &mut buf[HEADER_LEN..];
    put_identity(
        p,
        r.v6,
        r.proto,
        &r.client_addr,
        r.client_port,
        &r.server_addr,
        r.server_port,
    );
    put64(p, 38, r.arrival);
    put32(p, 46, r.packets);
    p[50] = r.reason;
    put16(p, 51, r.shard);
    put32(p, 53, r.score.to_bits());
    put32(p, 57, r.peak_packet);
    w.write_all(&buf)
}

/// Writes one flow-dump frame.
pub fn write_flow<W: Write>(w: &mut W, r: &FlowRecord) -> io::Result<()> {
    let mut buf = [0u8; HEADER_LEN + FLOW_LEN];
    put_header(&mut buf, FrameKind::Flow, FLOW_LEN);
    let p = &mut buf[HEADER_LEN..];
    put_identity(
        p,
        r.v6,
        r.proto,
        &r.client_addr,
        r.client_port,
        &r.server_addr,
        r.server_port,
    );
    p[38] = r.state;
    p[39] = r.lingering as u8;
    put64(p, 40, r.age.to_bits());
    put64(p, 48, r.idle.to_bits());
    put64(p, 56, r.packets);
    put64(p, 64, r.bytes);
    put32(p, 72, r.score.to_bits());
    put64(p, 76, r.arrival);
    w.write_all(&buf)
}

/// Writes one snapshot frame covering every shard.
pub fn write_snapshot<W: Write>(w: &mut W, snap: &TelemetrySnapshot) -> io::Result<()> {
    let payload_len = 2 + snap.shards.len() * SHARD_BLOCK_LEN;
    let mut buf = vec![0u8; HEADER_LEN + payload_len];
    put_header(&mut buf, FrameKind::Snapshot, payload_len);
    put16(&mut buf, HEADER_LEN, snap.shards.len() as u16);
    let mut o = HEADER_LEN + 2;
    for s in &snap.shards {
        for v in shard_counter_values(s) {
            put64(&mut buf, o, v);
            o += 8;
        }
        for st in &s.stages {
            for v in [st.count, st.sum_ns, st.p50_ns, st.p99_ns, st.max_ns] {
                put64(&mut buf, o, v);
                o += 8;
            }
        }
    }
    debug_assert_eq!(o, buf.len());
    w.write_all(&buf)
}

/// The 19 snapshot counters in wire order (declaration order of
/// [`ShardSnapshot`], gauges included).
fn shard_counter_values(s: &ShardSnapshot) -> [u64; SHARD_COUNTERS] {
    [
        s.pushed,
        s.scored,
        s.dropped,
        s.quarantined,
        s.dispatched,
        s.in_flight,
        s.restarts,
        s.flows_closed,
        s.full_waits,
        s.degraded_windows,
        s.heartbeat,
        s.live_flows,
        s.flows_peak,
        s.evicted_idle,
        s.evicted_capacity,
        s.closed_tcp,
        s.length_capped,
        s.drained,
        s.time_wait_expired,
    ]
}

/// A zero-copy view of one frame: header validated, payload borrowed
/// from the input buffer (no bytes copied until a record is
/// materialized).
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'a> {
    kind: FrameKind,
    payload: &'a [u8],
}

impl<'a> FrameView<'a> {
    /// Parses one frame from the front of `buf`, returning the view and
    /// the remaining bytes.
    pub fn parse(buf: &'a [u8]) -> Result<(FrameView<'a>, &'a [u8]), WireError> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                need: HEADER_LEN,
                have: buf.len(),
            });
        }
        if buf[0] != WIRE_VERSION {
            return Err(WireError::BadVersion(buf[0]));
        }
        let kind = FrameKind::from_u8(buf[1]).ok_or(WireError::BadKind(buf[1]))?;
        let reserved = be16(buf, 2);
        if reserved != 0 {
            return Err(WireError::BadReserved(reserved));
        }
        let len = be32(buf, 4) as usize;
        if buf.len() < HEADER_LEN + len {
            return Err(WireError::Truncated {
                need: HEADER_LEN + len,
                have: buf.len(),
            });
        }
        let ok_len = match kind {
            FrameKind::Verdict => len == VERDICT_LEN,
            FrameKind::Flow => len == FLOW_LEN,
            FrameKind::Snapshot => len >= 2 && (len - 2).is_multiple_of(SHARD_BLOCK_LEN),
        };
        if !ok_len {
            return Err(WireError::BadLength { kind, len });
        }
        let view = FrameView {
            kind,
            payload: &buf[HEADER_LEN..HEADER_LEN + len],
        };
        Ok((view, &buf[HEADER_LEN + len..]))
    }

    /// The frame kind.
    pub fn kind(&self) -> FrameKind {
        self.kind
    }

    /// The raw payload bytes.
    pub fn payload(&self) -> &'a [u8] {
        self.payload
    }

    /// Zero-copy verdict accessors (frame must be a verdict).
    pub fn verdict(&self) -> Result<VerdictView<'a>, WireError> {
        if self.kind != FrameKind::Verdict {
            return Err(WireError::BadKind(self.kind as u8));
        }
        Ok(VerdictView(self.payload))
    }

    /// Zero-copy flow accessors (frame must be a flow dump).
    pub fn flow(&self) -> Result<FlowView<'a>, WireError> {
        if self.kind != FrameKind::Flow {
            return Err(WireError::BadKind(self.kind as u8));
        }
        Ok(FlowView(self.payload))
    }

    /// Decodes a snapshot frame back into a [`TelemetrySnapshot`].
    pub fn snapshot(&self) -> Result<TelemetrySnapshot, WireError> {
        if self.kind != FrameKind::Snapshot {
            return Err(WireError::BadKind(self.kind as u8));
        }
        let p = self.payload;
        let declared = be16(p, 0) as usize;
        let fits = (p.len() - 2) / SHARD_BLOCK_LEN;
        if declared != fits {
            return Err(WireError::BadLength {
                kind: FrameKind::Snapshot,
                len: p.len(),
            });
        }
        let mut shards = Vec::with_capacity(declared);
        let mut o = 2;
        for _ in 0..declared {
            let mut c = [0u64; SHARD_COUNTERS];
            for v in c.iter_mut() {
                *v = be64(p, o);
                o += 8;
            }
            let stages = std::array::from_fn(|_| {
                let st = StageSummary {
                    count: be64(p, o),
                    sum_ns: be64(p, o + 8),
                    p50_ns: be64(p, o + 16),
                    p99_ns: be64(p, o + 24),
                    max_ns: be64(p, o + 32),
                };
                o += STAGE_FIELDS * 8;
                st
            });
            shards.push(ShardSnapshot {
                pushed: c[0],
                scored: c[1],
                dropped: c[2],
                quarantined: c[3],
                dispatched: c[4],
                in_flight: c[5],
                restarts: c[6],
                flows_closed: c[7],
                full_waits: c[8],
                degraded_windows: c[9],
                heartbeat: c[10],
                live_flows: c[11],
                flows_peak: c[12],
                evicted_idle: c[13],
                evicted_capacity: c[14],
                closed_tcp: c[15],
                length_capped: c[16],
                drained: c[17],
                time_wait_expired: c[18],
                stages,
            });
        }
        Ok(TelemetrySnapshot { shards })
    }
}

/// Parses a whole buffer of concatenated frames.
pub fn read_frames(buf: &[u8]) -> Result<Vec<FrameView<'_>>, WireError> {
    let mut rest = buf;
    let mut frames = Vec::new();
    while !rest.is_empty() {
        let (frame, tail) = FrameView::parse(rest)?;
        frames.push(frame);
        rest = tail;
    }
    Ok(frames)
}

macro_rules! identity_accessors {
    () => {
        /// IPv6 flag (false: IPv4 in the first 4 address bytes).
        pub fn v6(&self) -> bool {
            self.0[0] != 0
        }

        /// IP protocol number.
        pub fn proto(&self) -> u8 {
            self.0[1]
        }

        /// Client address block (network order, zero-padded for v4).
        pub fn client_addr(&self) -> [u8; 16] {
            let mut a = [0u8; 16];
            a.copy_from_slice(&self.0[2..18]);
            a
        }

        /// Client port.
        pub fn client_port(&self) -> u16 {
            be16(self.0, 18)
        }

        /// Server address block.
        pub fn server_addr(&self) -> [u8; 16] {
            let mut a = [0u8; 16];
            a.copy_from_slice(&self.0[20..36]);
            a
        }

        /// Server port.
        pub fn server_port(&self) -> u16 {
            be16(self.0, 36)
        }
    };
}

/// Zero-copy accessors over a validated 61-byte verdict payload.
#[derive(Debug, Clone, Copy)]
pub struct VerdictView<'a>(&'a [u8]);

impl VerdictView<'_> {
    identity_accessors!();

    /// First-packet arrival tag.
    pub fn arrival(&self) -> u64 {
        be64(self.0, 38)
    }

    /// Packets in the flow incarnation.
    pub fn packets(&self) -> u32 {
        be32(self.0, 46)
    }

    /// `CloseReason` discriminant.
    pub fn reason(&self) -> u8 {
        self.0[50]
    }

    /// Scoring shard index.
    pub fn shard(&self) -> u16 {
        be16(self.0, 51)
    }

    /// Final anomaly score (bit-exact).
    pub fn score(&self) -> f32 {
        f32::from_bits(be32(self.0, 53))
    }

    /// Packet index of the peak-scoring window.
    pub fn peak_packet(&self) -> u32 {
        be32(self.0, 57)
    }

    /// Materializes the record (copies out of the buffer).
    pub fn to_record(&self) -> VerdictRecord {
        VerdictRecord {
            v6: self.v6(),
            proto: self.proto(),
            client_addr: self.client_addr(),
            client_port: self.client_port(),
            server_addr: self.server_addr(),
            server_port: self.server_port(),
            arrival: self.arrival(),
            packets: self.packets(),
            reason: self.reason(),
            shard: self.shard(),
            score: self.score(),
            peak_packet: self.peak_packet(),
        }
    }
}

/// Zero-copy accessors over a validated 84-byte flow payload.
#[derive(Debug, Clone, Copy)]
pub struct FlowView<'a>(&'a [u8]);

impl FlowView<'_> {
    identity_accessors!();

    /// `TcpState` discriminant (255: non-TCP).
    pub fn state(&self) -> u8 {
        self.0[38]
    }

    /// TIME_WAIT linger flag.
    pub fn lingering(&self) -> bool {
        self.0[39] != 0
    }

    /// Seconds since the first packet.
    pub fn age(&self) -> f64 {
        f64::from_bits(be64(self.0, 40))
    }

    /// Seconds since the last packet.
    pub fn idle(&self) -> f64 {
        f64::from_bits(be64(self.0, 48))
    }

    /// Packets ingested.
    pub fn packets(&self) -> u64 {
        be64(self.0, 56)
    }

    /// Wire bytes ingested.
    pub fn bytes(&self) -> u64 {
        be64(self.0, 64)
    }

    /// Current anomaly score.
    pub fn score(&self) -> f32 {
        f32::from_bits(be32(self.0, 72))
    }

    /// First-packet arrival tag.
    pub fn arrival(&self) -> u64 {
        be64(self.0, 76)
    }

    /// Materializes the record.
    pub fn to_record(&self) -> FlowRecord {
        FlowRecord {
            v6: self.v6(),
            proto: self.proto(),
            client_addr: self.client_addr(),
            client_port: self.client_port(),
            server_addr: self.server_addr(),
            server_port: self.server_port(),
            state: self.state(),
            lingering: self.lingering(),
            age: self.age(),
            idle: self.idle(),
            packets: self.packets(),
            bytes: self.bytes(),
            score: self.score(),
            arrival: self.arrival(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_verdict() -> VerdictRecord {
        VerdictRecord {
            v6: false,
            proto: 6,
            client_addr: [10, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
            client_port: 43210,
            server_addr: [192, 168, 1, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
            server_port: 443,
            arrival: 12345,
            packets: 99,
            reason: 0,
            shard: 3,
            score: 0.875,
            peak_packet: 61,
        }
    }

    #[test]
    fn verdict_frames_round_trip() {
        let mut buf = Vec::new();
        write_verdict(&mut buf, &sample_verdict()).unwrap();
        assert_eq!(buf.len(), HEADER_LEN + VERDICT_LEN);
        let (frame, rest) = FrameView::parse(&buf).unwrap();
        assert!(rest.is_empty());
        assert_eq!(frame.kind(), FrameKind::Verdict);
        let v = frame.verdict().unwrap();
        assert_eq!(v.to_record(), sample_verdict());
        assert_eq!(v.score().to_bits(), 0.875f32.to_bits());
    }

    #[test]
    fn snapshot_frames_round_trip() {
        let mut snap = TelemetrySnapshot {
            shards: vec![ShardSnapshot::default(); 3],
        };
        snap.shards[1].pushed = 7;
        snap.shards[1].scored = 6;
        snap.shards[1].dropped = 1;
        snap.shards[1].dispatched = 9;
        snap.shards[1].in_flight = 2;
        snap.shards[2].stages[1].count = 4;
        snap.shards[2].stages[1].p99_ns = 2048;
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        let (frame, rest) = FrameView::parse(&buf).unwrap();
        assert!(rest.is_empty());
        assert_eq!(frame.snapshot().unwrap(), snap);
    }

    #[test]
    fn mixed_streams_parse_in_order() {
        let mut buf = Vec::new();
        write_verdict(&mut buf, &sample_verdict()).unwrap();
        write_snapshot(&mut buf, &TelemetrySnapshot::default()).unwrap();
        let flow = FlowRecord {
            v6: true,
            proto: 17,
            client_addr: [0xfe; 16],
            client_port: 1,
            server_addr: [0x20; 16],
            server_port: 2,
            state: 255,
            lingering: false,
            age: 1.5,
            idle: 0.25,
            packets: 11,
            bytes: 4096,
            score: -0.0,
            arrival: 3,
        };
        write_flow(&mut buf, &flow).unwrap();
        let frames = read_frames(&buf).unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].kind(), FrameKind::Verdict);
        assert_eq!(frames[1].kind(), FrameKind::Snapshot);
        assert_eq!(frames[2].flow().unwrap().to_record(), flow);
        assert_eq!(
            frames[2].flow().unwrap().score().to_bits(),
            (-0.0f32).to_bits(),
            "score bits survive, sign of zero included"
        );
    }

    #[test]
    fn malformed_inputs_yield_typed_errors() {
        let mut buf = Vec::new();
        write_verdict(&mut buf, &sample_verdict()).unwrap();

        assert!(matches!(
            FrameView::parse(&buf[..4]),
            Err(WireError::Truncated { .. })
        ));
        assert!(matches!(
            FrameView::parse(&buf[..HEADER_LEN + 10]),
            Err(WireError::Truncated { .. })
        ));

        let mut bad = buf.clone();
        bad[0] = 9;
        assert_eq!(
            FrameView::parse(&bad).unwrap_err(),
            WireError::BadVersion(9)
        );

        let mut bad = buf.clone();
        bad[1] = 77;
        assert_eq!(FrameView::parse(&bad).unwrap_err(), WireError::BadKind(77));

        let mut bad = buf.clone();
        bad[2] = 1;
        assert!(matches!(
            FrameView::parse(&bad).unwrap_err(),
            WireError::BadReserved(_)
        ));

        let mut bad = buf.clone();
        bad[7] = VERDICT_LEN as u8 - 1; // shorten the declared payload
        assert!(matches!(
            FrameView::parse(&bad).unwrap_err(),
            WireError::BadLength { .. }
        ));

        // A snapshot whose declared shard count disagrees with its length.
        let mut buf = Vec::new();
        write_snapshot(
            &mut buf,
            &TelemetrySnapshot {
                shards: vec![ShardSnapshot::default()],
            },
        )
        .unwrap();
        buf[HEADER_LEN + 1] = 2;
        let (frame, _) = FrameView::parse(&buf).unwrap();
        assert!(matches!(
            frame.snapshot().unwrap_err(),
            WireError::BadLength { .. }
        ));
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let mut buf = Vec::new();
        write_verdict(&mut buf, &sample_verdict()).unwrap();
        let (frame, _) = FrameView::parse(&buf).unwrap();
        assert!(frame.flow().is_err());
        assert!(frame.snapshot().is_err());
    }
}
