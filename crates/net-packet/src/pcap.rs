//! Classic libpcap file format (`LINKTYPE_RAW` = 101, i.e. raw IPv4/IPv6).
//!
//! Traces written here open in tcpdump/Wireshark, and real captures using
//! the raw link type can be ingested in place of synthetic traffic. Only the
//! classic (non-ng) little-endian format is produced; both byte orders and
//! microsecond/nanosecond precision are accepted on read.
//!
//! Reading runs an inline [`Reassembler`]: IPv4 fragment records are not
//! skipped but collected, and each datagram that completes is emitted as a
//! single packet (carrying [`crate::ReassemblyInfo`]) at the position of
//! its completing fragment — so a fragmented flow yields exactly the
//! packets an end host would deliver, in arrival order.

use crate::{Packet, Reassembler};
use std::io::{self, Read, Write};

const MAGIC_LE_US: u32 = 0xa1b2c3d4;
const MAGIC_BE_US: u32 = 0xd4c3b2a1;
const MAGIC_LE_NS: u32 = 0xa1b23c4d;
const MAGIC_BE_NS: u32 = 0x4d3cb2a1;
/// Raw IP link type: packet begins directly with the IP header.
pub const LINKTYPE_RAW: u32 = 101;

/// Errors from pcap reading.
#[derive(Debug)]
pub enum PcapError {
    Io(io::Error),
    /// Magic number is not a known pcap magic.
    BadMagic(u32),
    /// Link type other than `LINKTYPE_RAW`.
    UnsupportedLinkType(u32),
    /// A packet record was truncated.
    Truncated,
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "I/O error: {e}"),
            PcapError::BadMagic(m) => write!(f, "not a pcap file (magic {m:#010x})"),
            PcapError::UnsupportedLinkType(lt) => write!(f, "unsupported link type {lt}"),
            PcapError::Truncated => write!(f, "truncated packet record"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

fn write_header<W: Write>(w: &mut W) -> io::Result<()> {
    w.write_all(&MAGIC_LE_US.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?; // major
    w.write_all(&4u16.to_le_bytes())?; // minor
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&65535u32.to_le_bytes())?; // snaplen
    w.write_all(&LINKTYPE_RAW.to_le_bytes())
}

fn write_record<W: Write>(w: &mut W, timestamp: f64, data: &[u8]) -> io::Result<()> {
    let secs = timestamp.floor() as u32;
    let usecs = ((timestamp - timestamp.floor()) * 1e6).round() as u32;
    w.write_all(&secs.to_le_bytes())?;
    w.write_all(&usecs.to_le_bytes())?;
    w.write_all(&(data.len() as u32).to_le_bytes())?;
    w.write_all(&(data.len() as u32).to_le_bytes())?;
    w.write_all(data)
}

/// Writes packets as a classic little-endian microsecond pcap stream.
pub fn write_pcap<W: Write>(mut w: W, packets: &[Packet]) -> io::Result<()> {
    write_header(&mut w)?;
    for p in packets {
        write_record(&mut w, p.timestamp, &p.to_bytes())?;
    }
    Ok(())
}

/// Writes raw IP records — bytes that need not parse as whole transport
/// packets, e.g. the output of [`crate::fragment_datagram`] — as a classic
/// pcap stream. `records` pairs each timestamp with its raw datagram.
pub fn write_pcap_raw<W: Write>(mut w: W, records: &[(f64, Vec<u8>)]) -> io::Result<()> {
    write_header(&mut w)?;
    for (ts, data) in records {
        write_record(&mut w, *ts, data)?;
    }
    Ok(())
}

/// Reads a pcap stream produced by [`write_pcap`] (or any `LINKTYPE_RAW`
/// classic pcap). IPv4 fragments are reassembled inline (see the module
/// docs); records that still fail parsing (unsupported protocols in a real
/// capture, incomplete fragment trains) are skipped rather than failing
/// the whole file.
pub fn read_pcap<R: Read>(mut r: R) -> Result<Vec<Packet>, PcapError> {
    let mut header = [0u8; 24];
    r.read_exact(&mut header)?;
    let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let (big_endian, ns) = match magic {
        MAGIC_LE_US => (false, false),
        MAGIC_LE_NS => (false, true),
        MAGIC_BE_US => (true, false),
        MAGIC_BE_NS => (true, true),
        other => return Err(PcapError::BadMagic(other)),
    };
    let read_u32 = |b: &[u8]| {
        if big_endian {
            u32::from_be_bytes([b[0], b[1], b[2], b[3]])
        } else {
            u32::from_le_bytes([b[0], b[1], b[2], b[3]])
        }
    };
    let linktype = read_u32(&header[20..24]);
    if linktype != LINKTYPE_RAW {
        return Err(PcapError::UnsupportedLinkType(linktype));
    }

    let mut packets = Vec::new();
    let mut reassembler = Reassembler::new();
    loop {
        let mut rec = [0u8; 16];
        match r.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let secs = read_u32(&rec[0..4]) as f64;
        let frac = read_u32(&rec[4..8]) as f64;
        let caplen = read_u32(&rec[8..12]) as usize;
        let ts = secs + frac / if ns { 1e9 } else { 1e6 };
        let mut data = vec![0u8; caplen];
        r.read_exact(&mut data).map_err(|_| PcapError::Truncated)?;
        match Packet::from_bytes(ts, &data) {
            Ok(p) => packets.push(p),
            Err(crate::wire::ParseError::Fragment { .. }) => {
                if let Some(p) = reassembler.push(ts, &data) {
                    packets.push(p);
                }
            }
            Err(_) => {}
        }
    }
    Ok(packets)
}

/// Reads a `LINKTYPE_RAW` classic pcap as raw records — each timestamp
/// paired with the undecoded capture bytes, in file order, with no
/// parsing, reassembly or skipping. The inverse of [`write_pcap_raw`],
/// and the input for byte-level capture views (hexdumps, frame-length
/// audits) that must show exactly what is on disk, including records
/// [`read_pcap`] would reassemble or drop.
pub fn read_pcap_raw<R: Read>(mut r: R) -> Result<Vec<(f64, Vec<u8>)>, PcapError> {
    let mut header = [0u8; 24];
    r.read_exact(&mut header)?;
    let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let (big_endian, ns) = match magic {
        MAGIC_LE_US => (false, false),
        MAGIC_LE_NS => (false, true),
        MAGIC_BE_US => (true, false),
        MAGIC_BE_NS => (true, true),
        other => return Err(PcapError::BadMagic(other)),
    };
    let read_u32 = |b: &[u8]| {
        if big_endian {
            u32::from_be_bytes([b[0], b[1], b[2], b[3]])
        } else {
            u32::from_le_bytes([b[0], b[1], b[2], b[3]])
        }
    };
    let linktype = read_u32(&header[20..24]);
    if linktype != LINKTYPE_RAW {
        return Err(PcapError::UnsupportedLinkType(linktype));
    }

    let mut records = Vec::new();
    loop {
        let mut rec = [0u8; 16];
        match r.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let secs = read_u32(&rec[0..4]) as f64;
        let frac = read_u32(&rec[4..8]) as f64;
        let caplen = read_u32(&rec[8..12]) as usize;
        let ts = secs + frac / if ns { 1e9 } else { 1e6 };
        let mut data = vec![0u8; caplen];
        r.read_exact(&mut data).map_err(|_| PcapError::Truncated)?;
        records.push((ts, data));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fragment_datagram, Ipv4Header, TcpFlags, TcpHeader};
    use std::net::Ipv4Addr;

    fn sample(n: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                let ip =
                    Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 64);
                let mut tcp = TcpHeader::new(1234, 80, i as u32 * 100, 0);
                tcp.flags = TcpFlags::ACK;
                Packet::new(i as f64 * 0.001 + 1000.0, ip, tcp, vec![i as u8; i % 7])
            })
            .collect()
    }

    #[test]
    fn round_trip() {
        let pkts = sample(5);
        let mut buf = Vec::new();
        write_pcap(&mut buf, &pkts).unwrap();
        let back = read_pcap(&buf[..]).unwrap();
        assert_eq!(back.len(), 5);
        for (a, b) in pkts.iter().zip(&back) {
            assert_eq!(a.ip, b.ip);
            assert_eq!(a.tcp(), b.tcp());
            assert_eq!(a.payload, b.payload);
            assert!((a.timestamp - b.timestamp).abs() < 1e-5);
        }
    }

    #[test]
    fn empty_file_round_trips() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, &[]).unwrap();
        assert!(read_pcap(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = [0u8; 24];
        assert!(matches!(read_pcap(&buf[..]), Err(PcapError::BadMagic(0))));
    }

    #[test]
    fn wrong_linktype_rejected() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, &[]).unwrap();
        buf[20] = 1; // LINKTYPE_ETHERNET
        assert!(matches!(
            read_pcap(&buf[..]),
            Err(PcapError::UnsupportedLinkType(1))
        ));
    }

    #[test]
    fn truncated_record_detected() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, &sample(1)).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_pcap(&buf[..]), Err(PcapError::Truncated)));
    }

    /// Regression (PR 9): a fragmented datagram in a capture used to decode
    /// as N garbage packets (phantom flows); now it reads back as ONE
    /// reassembled packet.
    #[test]
    fn protocol_fragmented_capture_reads_as_one_packet() {
        let mut ip = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 9), Ipv4Addr::new(10, 0, 0, 2), 64);
        ip.identification = 0x4242;
        let mut tcp = TcpHeader::new(50000, 80, 1, 1);
        tcp.flags = TcpFlags::ACK | TcpFlags::PSH;
        let p = Packet::new(1000.0, ip, tcp, vec![7u8; 96]);
        let frags = fragment_datagram(&p.to_bytes(), 40);
        assert!(frags.len() > 1);
        let records: Vec<(f64, Vec<u8>)> = frags
            .into_iter()
            .enumerate()
            .map(|(i, f)| (1000.0 + i as f64 * 0.001, f))
            .collect();
        let mut buf = Vec::new();
        write_pcap_raw(&mut buf, &records).unwrap();
        let back = read_pcap(&buf[..]).unwrap();
        assert_eq!(back.len(), 1, "one datagram, not one flow per fragment");
        assert_eq!(back[0].payload, p.payload);
        assert_eq!(back[0].tcp().src_port, 50000);
        assert!(back[0].reassembly.is_some());
        assert!(back[0].transport_checksum_valid());
    }

    /// Raw reads return every record byte-for-byte, fragments included —
    /// no reassembly, no skipping.
    #[test]
    fn raw_read_preserves_records_verbatim() {
        let pkts = sample(3);
        let mut buf = Vec::new();
        write_pcap(&mut buf, &pkts).unwrap();
        let raw = read_pcap_raw(&buf[..]).unwrap();
        assert_eq!(raw.len(), 3);
        for (p, (ts, bytes)) in pkts.iter().zip(&raw) {
            assert!((p.timestamp - ts).abs() < 1e-5);
            assert_eq!(&p.to_bytes(), bytes);
        }

        // A fragment train stays N raw records where read_pcap yields 1.
        let ip = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 9), Ipv4Addr::new(10, 0, 0, 2), 64);
        let mut tcp = TcpHeader::new(50000, 80, 1, 1);
        tcp.flags = TcpFlags::ACK;
        let p = Packet::new(1000.0, ip, tcp, vec![7u8; 96]);
        let frags = fragment_datagram(&p.to_bytes(), 40);
        let records: Vec<(f64, Vec<u8>)> = frags.into_iter().map(|f| (1000.0, f)).collect();
        let mut buf = Vec::new();
        write_pcap_raw(&mut buf, &records).unwrap();
        let raw = read_pcap_raw(&buf[..]).unwrap();
        assert_eq!(raw.len(), records.len());
        assert_eq!(raw, records);
        assert_eq!(read_pcap(&buf[..]).unwrap().len(), 1);
    }

    #[test]
    fn raw_read_detects_truncation() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, &sample(1)).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_pcap_raw(&buf[..]), Err(PcapError::Truncated)));
    }
}
