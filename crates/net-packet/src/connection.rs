//! Connection-level containers shared across the workspace.

use crate::ipv4::PROTO_TCP;
use crate::{IpHeader, Packet, TcpFlags};
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// Direction of a packet relative to the connection initiator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// From the connection initiator (client) to the responder (server).
    ClientToServer,
    /// From the responder back to the initiator.
    ServerToClient,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::ClientToServer => Direction::ServerToClient,
            Direction::ServerToClient => Direction::ClientToServer,
        }
    }

    /// Index (0 = client→server, 1 = server→client) for per-direction state.
    pub fn index(self) -> usize {
        match self {
            Direction::ClientToServer => 0,
            Direction::ServerToClient => 1,
        }
    }
}

/// One endpoint of a connection (IPv4 or IPv6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Endpoint {
    pub addr: IpAddr,
    pub port: u16,
}

impl Endpoint {
    /// `impl Into<IpAddr>` so existing `Ipv4Addr` call sites keep working
    /// unchanged alongside `Ipv6Addr` and `IpAddr` ones.
    pub fn new(addr: impl Into<IpAddr>, port: u16) -> Self {
        Endpoint {
            addr: addr.into(),
            port,
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.addr {
            IpAddr::V4(a) => write!(f, "{}:{}", a, self.port),
            IpAddr::V6(a) => write!(f, "[{}]:{}", a, self.port),
        }
    }
}

/// The 5-tuple identifying a connection, oriented client → server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    pub client: Endpoint,
    pub server: Endpoint,
    /// Transport protocol number (6 TCP, 17 UDP): a TCP and a UDP flow on
    /// the same address/port pair are distinct flows.
    pub proto: u8,
}

impl FlowKey {
    /// A TCP flow key; use [`with_proto`](Self::with_proto) for UDP.
    pub fn new(client: Endpoint, server: Endpoint) -> Self {
        FlowKey {
            client,
            server,
            proto: PROTO_TCP,
        }
    }

    /// The same key with a different transport protocol.
    pub fn with_proto(mut self, proto: u8) -> Self {
        self.proto = proto;
        self
    }

    /// Classifies a packet against this key by source address/port.
    /// Returns `None` for packets that belong to neither direction.
    pub fn direction_of(&self, p: &Packet) -> Option<Direction> {
        let src = Endpoint::new(p.src_addr(), p.src_port());
        let dst = Endpoint::new(p.dst_addr(), p.dst_port());
        if src == self.client && dst == self.server {
            Some(Direction::ClientToServer)
        } else if src == self.server && dst == self.client {
            Some(Direction::ServerToClient)
        } else {
            None
        }
    }
}

impl std::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.client, self.server)
    }
}

/// A single connection: its 5-tuple and time-ordered packets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Connection {
    pub key: FlowKey,
    pub packets: Vec<Packet>,
}

impl Connection {
    pub fn new(key: FlowKey) -> Self {
        Connection {
            key,
            packets: Vec::new(),
        }
    }

    /// Direction of packet `i` relative to the flow key; packets that match
    /// neither orientation (malformed injections with foreign tuples) are
    /// treated as client→server, the direction evasion attacks originate
    /// from in the paper's threat model.
    pub fn direction(&self, i: usize) -> Direction {
        self.key
            .direction_of(&self.packets[i])
            .unwrap_or(Direction::ClientToServer)
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when the connection holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Indices of packets carrying payload in the ESTABLISHED phase, i.e.
    /// candidate "data packets" as the attack literature uses the term:
    /// non-SYN, non-RST packets with non-empty payload. (UDP packets have
    /// no flags, so every payload-carrying one qualifies.)
    pub fn data_packet_indices(&self) -> Vec<usize> {
        self.packets
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                !p.payload.is_empty()
                    && !p.tcp_flags().contains(TcpFlags::SYN)
                    && !p.tcp_flags().contains(TcpFlags::RST)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Index of the first packet after the three-way handshake completes
    /// (first packet following the client's handshake-completing ACK), or
    /// `None` for traces without a complete handshake.
    pub fn first_index_after_handshake(&self) -> Option<usize> {
        // SYN, then SYN-ACK, then the first client ACK completes the
        // handshake; return the position after that ACK.
        let mut saw_syn = false;
        let mut saw_synack = false;
        for (i, p) in self.packets.iter().enumerate() {
            let f = p.tcp_flags();
            if f.contains(TcpFlags::SYN) && !f.contains(TcpFlags::ACK) {
                saw_syn = true;
            } else if f.contains(TcpFlags::SYN) && f.contains(TcpFlags::ACK) {
                saw_synack = saw_syn;
            } else if saw_synack && f.contains(TcpFlags::ACK) {
                return Some(i + 1);
            }
        }
        None
    }

    /// Total payload bytes across the connection.
    pub fn total_payload(&self) -> usize {
        self.packets.iter().map(|p| p.payload.len()).sum()
    }

    /// Renumbers IP identification fields (IPv4 only; v6 has none) and
    /// recomputes checksums for all packets. Preserving deliberately
    /// corrupted fields is NOT done — this is a helper for generators
    /// producing benign traffic only.
    pub fn finalize_benign(&mut self) {
        for (i, p) in self.packets.iter_mut().enumerate() {
            if let IpHeader::V4(h) = &mut p.ip {
                h.identification = i as u16;
            }
            p.fill_checksums();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ipv4Header, TcpHeader};
    use std::net::Ipv4Addr;

    fn key() -> FlowKey {
        FlowKey::new(
            Endpoint::new(Ipv4Addr::new(192, 168, 1, 10), 50000),
            Endpoint::new(Ipv4Addr::new(93, 184, 216, 34), 443),
        )
    }

    fn v4(a: IpAddr) -> Ipv4Addr {
        match a {
            IpAddr::V4(v) => v,
            IpAddr::V6(_) => unreachable!("v4 test fixture"),
        }
    }

    fn pkt(key: &FlowKey, dir: Direction, flags: TcpFlags, payload: &[u8]) -> Packet {
        let (src, dst) = match dir {
            Direction::ClientToServer => (key.client, key.server),
            Direction::ServerToClient => (key.server, key.client),
        };
        let ip = Ipv4Header::new(v4(src.addr), v4(dst.addr), 64);
        let mut tcp = TcpHeader::new(src.port, dst.port, 100, 200);
        tcp.flags = flags;
        Packet::new(0.0, ip, tcp, payload.to_vec())
    }

    #[test]
    fn direction_classification() {
        let k = key();
        let c2s = pkt(&k, Direction::ClientToServer, TcpFlags::SYN, &[]);
        let s2c = pkt(
            &k,
            Direction::ServerToClient,
            TcpFlags::SYN | TcpFlags::ACK,
            &[],
        );
        assert_eq!(k.direction_of(&c2s), Some(Direction::ClientToServer));
        assert_eq!(k.direction_of(&s2c), Some(Direction::ServerToClient));
        assert_eq!(Direction::ClientToServer.flip(), Direction::ServerToClient);
    }

    #[test]
    fn handshake_detection() {
        let k = key();
        let mut conn = Connection::new(k);
        conn.packets
            .push(pkt(&k, Direction::ClientToServer, TcpFlags::SYN, &[]));
        conn.packets.push(pkt(
            &k,
            Direction::ServerToClient,
            TcpFlags::SYN | TcpFlags::ACK,
            &[],
        ));
        conn.packets
            .push(pkt(&k, Direction::ClientToServer, TcpFlags::ACK, &[]));
        conn.packets.push(pkt(
            &k,
            Direction::ClientToServer,
            TcpFlags::ACK | TcpFlags::PSH,
            b"data",
        ));
        assert_eq!(conn.first_index_after_handshake(), Some(3));
        assert_eq!(conn.data_packet_indices(), vec![3]);
        assert_eq!(conn.total_payload(), 4);
    }

    #[test]
    fn incomplete_handshake_returns_none() {
        let k = key();
        let mut conn = Connection::new(k);
        conn.packets
            .push(pkt(&k, Direction::ClientToServer, TcpFlags::SYN, &[]));
        assert_eq!(conn.first_index_after_handshake(), None);
    }

    #[test]
    fn foreign_packets_default_to_client_direction() {
        let k = key();
        let mut conn = Connection::new(k);
        let mut stray = pkt(&k, Direction::ClientToServer, TcpFlags::RST, &[]);
        stray.ipv4_mut().src = Ipv4Addr::new(8, 8, 8, 8);
        conn.packets.push(stray);
        assert_eq!(conn.direction(0), Direction::ClientToServer);
    }

    #[test]
    fn protocol_distinguishes_flows_on_same_tuple() {
        let tcp_key = key();
        let udp_key = tcp_key.with_proto(crate::ipv4::PROTO_UDP);
        assert_ne!(tcp_key, udp_key);
        assert_eq!(udp_key.client, tcp_key.client);
    }
}
