//! Connection-level containers shared across the workspace.

use crate::{Packet, TcpFlags};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Direction of a packet relative to the connection initiator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// From the connection initiator (client) to the responder (server).
    ClientToServer,
    /// From the responder back to the initiator.
    ServerToClient,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::ClientToServer => Direction::ServerToClient,
            Direction::ServerToClient => Direction::ClientToServer,
        }
    }

    /// Index (0 = client→server, 1 = server→client) for per-direction state.
    pub fn index(self) -> usize {
        match self {
            Direction::ClientToServer => 0,
            Direction::ServerToClient => 1,
        }
    }
}

/// One endpoint of a TCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Endpoint {
    pub addr: Ipv4Addr,
    pub port: u16,
}

impl Endpoint {
    pub fn new(addr: Ipv4Addr, port: u16) -> Self {
        Endpoint { addr, port }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.addr, self.port)
    }
}

/// The 4-tuple identifying a connection, oriented client → server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    pub client: Endpoint,
    pub server: Endpoint,
}

impl FlowKey {
    pub fn new(client: Endpoint, server: Endpoint) -> Self {
        FlowKey { client, server }
    }

    /// Classifies a packet against this key by source address/port.
    /// Returns `None` for packets that belong to neither direction.
    pub fn direction_of(&self, p: &Packet) -> Option<Direction> {
        let src = Endpoint::new(p.ip.src, p.tcp.src_port);
        let dst = Endpoint::new(p.ip.dst, p.tcp.dst_port);
        if src == self.client && dst == self.server {
            Some(Direction::ClientToServer)
        } else if src == self.server && dst == self.client {
            Some(Direction::ServerToClient)
        } else {
            None
        }
    }
}

impl std::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.client, self.server)
    }
}

/// A single TCP connection: its 4-tuple and time-ordered packets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Connection {
    pub key: FlowKey,
    pub packets: Vec<Packet>,
}

impl Connection {
    pub fn new(key: FlowKey) -> Self {
        Connection {
            key,
            packets: Vec::new(),
        }
    }

    /// Direction of packet `i` relative to the flow key; packets that match
    /// neither orientation (malformed injections with foreign tuples) are
    /// treated as client→server, the direction evasion attacks originate
    /// from in the paper's threat model.
    pub fn direction(&self, i: usize) -> Direction {
        self.key
            .direction_of(&self.packets[i])
            .unwrap_or(Direction::ClientToServer)
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when the connection holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Indices of packets carrying payload in the ESTABLISHED phase, i.e.
    /// candidate "data packets" as the attack literature uses the term:
    /// non-SYN, non-RST packets with non-empty payload.
    pub fn data_packet_indices(&self) -> Vec<usize> {
        self.packets
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                !p.payload.is_empty()
                    && !p.tcp.flags.contains(TcpFlags::SYN)
                    && !p.tcp.flags.contains(TcpFlags::RST)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Index of the first packet after the three-way handshake completes
    /// (first packet following the client's handshake-completing ACK), or
    /// `None` for traces without a complete handshake.
    pub fn first_index_after_handshake(&self) -> Option<usize> {
        // SYN, then SYN-ACK, then the first client ACK completes the
        // handshake; return the position after that ACK.
        let mut saw_syn = false;
        let mut saw_synack = false;
        for (i, p) in self.packets.iter().enumerate() {
            let f = p.tcp.flags;
            if f.contains(TcpFlags::SYN) && !f.contains(TcpFlags::ACK) {
                saw_syn = true;
            } else if f.contains(TcpFlags::SYN) && f.contains(TcpFlags::ACK) {
                saw_synack = saw_syn;
            } else if saw_synack && f.contains(TcpFlags::ACK) {
                return Some(i + 1);
            }
        }
        None
    }

    /// Total payload bytes across the connection.
    pub fn total_payload(&self) -> usize {
        self.packets.iter().map(|p| p.payload.len()).sum()
    }

    /// Renumbers IP identification fields and recomputes checksums for all
    /// packets, preserving any deliberately-corrupted fields is NOT done —
    /// this is a helper for generators producing benign traffic only.
    pub fn finalize_benign(&mut self) {
        for (i, p) in self.packets.iter_mut().enumerate() {
            p.ip.identification = i as u16;
            p.fill_checksums();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ipv4Header, TcpHeader};

    fn key() -> FlowKey {
        FlowKey::new(
            Endpoint::new(Ipv4Addr::new(192, 168, 1, 10), 50000),
            Endpoint::new(Ipv4Addr::new(93, 184, 216, 34), 443),
        )
    }

    fn pkt(key: &FlowKey, dir: Direction, flags: TcpFlags, payload: &[u8]) -> Packet {
        let (src, dst) = match dir {
            Direction::ClientToServer => (key.client, key.server),
            Direction::ServerToClient => (key.server, key.client),
        };
        let ip = Ipv4Header::new(src.addr, dst.addr, 64);
        let mut tcp = TcpHeader::new(src.port, dst.port, 100, 200);
        tcp.flags = flags;
        Packet::new(0.0, ip, tcp, payload.to_vec())
    }

    #[test]
    fn direction_classification() {
        let k = key();
        let c2s = pkt(&k, Direction::ClientToServer, TcpFlags::SYN, &[]);
        let s2c = pkt(
            &k,
            Direction::ServerToClient,
            TcpFlags::SYN | TcpFlags::ACK,
            &[],
        );
        assert_eq!(k.direction_of(&c2s), Some(Direction::ClientToServer));
        assert_eq!(k.direction_of(&s2c), Some(Direction::ServerToClient));
        assert_eq!(Direction::ClientToServer.flip(), Direction::ServerToClient);
    }

    #[test]
    fn handshake_detection() {
        let k = key();
        let mut conn = Connection::new(k);
        conn.packets
            .push(pkt(&k, Direction::ClientToServer, TcpFlags::SYN, &[]));
        conn.packets.push(pkt(
            &k,
            Direction::ServerToClient,
            TcpFlags::SYN | TcpFlags::ACK,
            &[],
        ));
        conn.packets
            .push(pkt(&k, Direction::ClientToServer, TcpFlags::ACK, &[]));
        conn.packets.push(pkt(
            &k,
            Direction::ClientToServer,
            TcpFlags::ACK | TcpFlags::PSH,
            b"data",
        ));
        assert_eq!(conn.first_index_after_handshake(), Some(3));
        assert_eq!(conn.data_packet_indices(), vec![3]);
        assert_eq!(conn.total_payload(), 4);
    }

    #[test]
    fn incomplete_handshake_returns_none() {
        let k = key();
        let mut conn = Connection::new(k);
        conn.packets
            .push(pkt(&k, Direction::ClientToServer, TcpFlags::SYN, &[]));
        assert_eq!(conn.first_index_after_handshake(), None);
    }

    #[test]
    fn foreign_packets_default_to_client_direction() {
        let k = key();
        let mut conn = Connection::new(k);
        let mut stray = pkt(&k, Direction::ClientToServer, TcpFlags::RST, &[]);
        stray.ip.src = Ipv4Addr::new(8, 8, 8, 8);
        conn.packets.push(stray);
        assert_eq!(conn.direction(0), Direction::ClientToServer);
    }
}
