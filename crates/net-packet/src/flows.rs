//! Flow reassembly: grouping a raw packet stream (e.g. a pcap capture)
//! into [`Connection`]s by flow tuple.
//!
//! This is what turns `pcap::read_pcap` output into CLAP's unit of
//! analysis. Orientation follows the first packet seen for a tuple, unless
//! a later pure SYN identifies the true initiator (captures often start
//! mid-connection).

use crate::{Connection, Endpoint, FlowKey, Packet, TcpFlags};
use std::collections::HashMap;
use std::net::IpAddr;

/// Canonical (order-independent) form of a flow 5-tuple for hashing: both
/// directions of a flow map to the same key. This is the lookup key of
/// both the offline reassembler below and the streaming per-flow tables
/// in `clap-core`. v4 addresses live in the low 32 bits of the `u128`
/// slots; the `v6` discriminant keeps `::a.b.c.d` v6 flows distinct from
/// the v4 flows they would otherwise alias.
#[derive(Debug, PartialEq, Eq, Hash, Clone, Copy)]
pub struct CanonicalKey {
    v6: bool,
    proto: u8,
    lo: (u128, u16),
    hi: (u128, u16),
}

/// The Microsoft reference RSS hash key (the NDIS verification-suite
/// secret). Any fixed key works for load spreading; using the canonical
/// one lets the Toeplitz core be validated against the published test
/// vectors, so [`CanonicalKey::rss_hash`] can be pinned forever.
const RSS_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// [`RSS_KEY`] extended by cyclic repetition so inputs longer than 32
/// bytes (the v6 tuple is 37) always have a full 8-byte key window.
/// `RSS_KEY_EXT[..40] == RSS_KEY`, so hashes of inputs up to 32 bytes —
/// including the published NDIS verification vectors — are unchanged.
const RSS_KEY_EXT: [u8; 64] = {
    let mut k = [0u8; 64];
    let mut i = 0;
    while i < 64 {
        k[i] = RSS_KEY[i % 40];
        i += 1;
    }
    k
};

/// Toeplitz hash of `data` under [`RSS_KEY`] — the exact function RSS
/// NICs evaluate in hardware. For each set bit `p` of the input, XORs the
/// 32-bit window of the key starting at bit `p`.
fn toeplitz(data: &[u8]) -> u32 {
    let mut hash = 0u32;
    for (i, &byte) in data.iter().enumerate() {
        // Key bits [8i, 8i+64): covers every 32-bit window this byte needs.
        let w = u64::from_be_bytes(RSS_KEY_EXT[i..i + 8].try_into().expect("8-byte window"));
        for b in 0..8 {
            if byte & (0x80 >> b) != 0 {
                hash ^= (w >> (32 - b)) as u32;
            }
        }
    }
    hash
}

fn addr_bits(a: IpAddr) -> u128 {
    match a {
        IpAddr::V4(v) => u128::from(u32::from(v)),
        IpAddr::V6(v) => u128::from(v),
    }
}

impl CanonicalKey {
    fn of_parts(src: (IpAddr, u16), dst: (IpAddr, u16), proto: u8) -> CanonicalKey {
        let v6 = src.0.is_ipv6() || dst.0.is_ipv6();
        let a = (addr_bits(src.0), src.1);
        let b = (addr_bits(dst.0), dst.1);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        CanonicalKey { v6, proto, lo, hi }
    }

    /// Canonical key of a packet's 5-tuple. The protocol discriminant is
    /// the structural transport (6/17), not the corruptible IP protocol
    /// field, so a flow's packets land in one table entry even when an
    /// attack lies in the header.
    pub fn of(p: &Packet) -> CanonicalKey {
        Self::of_parts(
            (p.src_addr(), p.src_port()),
            (p.dst_addr(), p.dst_port()),
            p.transport.protocol_number(),
        )
    }

    /// Canonical key of an oriented [`FlowKey`] — the same key either
    /// direction's packets would produce, so flow-table entries can be
    /// looked up from a finalized connection's identity.
    pub fn of_key(k: &FlowKey) -> CanonicalKey {
        Self::of_parts(
            (k.client.addr, k.client.port),
            (k.server.addr, k.server.port),
            k.proto,
        )
    }

    /// Symmetric RSS hash of the 5-tuple: the standard Toeplitz function
    /// (Microsoft key) over the tuple in **canonical order**
    /// (`lo.ip ‖ hi.ip ‖ lo.port ‖ hi.port ‖ proto` — 13 bytes for v4,
    /// 37 for v6). Because the input is order-normalized, both directions
    /// of a flow hash identically — the property an RSS-sharded ingest
    /// front end needs so one worker owns a whole flow. The value is part
    /// of the stable API (sharded replay determinism depends on it) and is
    /// pinned by unit tests against a fixed table of known keys.
    pub fn rss_hash(&self) -> u32 {
        let mut data = [0u8; 37];
        let n = if self.v6 {
            data[0..16].copy_from_slice(&self.lo.0.to_be_bytes());
            data[16..32].copy_from_slice(&self.hi.0.to_be_bytes());
            data[32..34].copy_from_slice(&self.lo.1.to_be_bytes());
            data[34..36].copy_from_slice(&self.hi.1.to_be_bytes());
            data[36] = self.proto;
            37
        } else {
            data[0..4].copy_from_slice(&(self.lo.0 as u32).to_be_bytes());
            data[4..8].copy_from_slice(&(self.hi.0 as u32).to_be_bytes());
            data[8..10].copy_from_slice(&self.lo.1.to_be_bytes());
            data[10..12].copy_from_slice(&self.hi.1.to_be_bytes());
            data[12] = self.proto;
            13
        };
        toeplitz(&data[..n])
    }

    /// Shard index for an `shards`-way partition: fixed-point range
    /// reduction of [`rss_hash`](Self::rss_hash) (`hash * shards >> 32`),
    /// which spreads the full 32-bit hash instead of only its low bits.
    pub fn shard_of(&self, shards: usize) -> usize {
        ((u64::from(self.rss_hash()) * shards as u64) >> 32) as usize
    }
}

/// Groups packets into connections by flow 5-tuple, preserving capture
/// order within each flow.
///
/// * The connection's client/server orientation is taken from the first
///   pure SYN if one exists (TCP), else from the first packet of the flow.
/// * Connections are returned in order of first appearance.
pub fn assemble_connections(packets: &[Packet]) -> Vec<Connection> {
    let mut index: HashMap<CanonicalKey, usize> = HashMap::new();
    let mut flows: Vec<(Vec<Packet>, Option<FlowKey>)> = Vec::new();

    for p in packets {
        let ck = CanonicalKey::of(p);
        let slot = *index.entry(ck).or_insert_with(|| {
            flows.push((Vec::new(), None));
            flows.len() - 1
        });
        let (pkts, key) = &mut flows[slot];
        // A pure SYN pins the initiator regardless of capture order.
        let is_pure_syn =
            p.tcp_flags().contains(TcpFlags::SYN) && !p.tcp_flags().contains(TcpFlags::ACK);
        let this_key = FlowKey::new(
            Endpoint::new(p.src_addr(), p.src_port()),
            Endpoint::new(p.dst_addr(), p.dst_port()),
        )
        .with_proto(p.transport.protocol_number());
        match key {
            None => *key = Some(this_key),
            Some(k) if is_pure_syn && k.client != this_key.client => {
                // Reorient: the SYN sender is the real client.
                *k = this_key;
            }
            _ => {}
        }
        pkts.push(p.clone());
    }

    flows
        .into_iter()
        .map(|(packets, key)| Connection {
            key: key.expect("every flow has at least one packet"),
            packets,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ipv4Header, Ipv6Header, TcpHeader, UdpHeader};
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn pkt(src: (Ipv4Addr, u16), dst: (Ipv4Addr, u16), flags: TcpFlags, ts: f64) -> Packet {
        let ip = Ipv4Header::new(src.0, dst.0, 64);
        let mut tcp = TcpHeader::new(src.1, dst.1, 100, 0);
        tcp.flags = flags;
        Packet::new(ts, ip, tcp, Vec::new())
    }

    /// One pinned hash case: two endpoints and the expected 32-bit hash.
    type PinnedVector = ((Ipv4Addr, u16), (Ipv4Addr, u16), u32);

    const A: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 1), 40000);
    const B: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 2), 443);
    const C: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 3), 80);

    #[test]
    fn groups_by_tuple_bidirectionally() {
        let packets = vec![
            pkt(A, B, TcpFlags::SYN, 0.0),
            pkt(A, C, TcpFlags::SYN, 0.1),
            pkt(B, A, TcpFlags::SYN | TcpFlags::ACK, 0.2),
            pkt(A, B, TcpFlags::ACK, 0.3),
            pkt(C, A, TcpFlags::SYN | TcpFlags::ACK, 0.4),
        ];
        let conns = assemble_connections(&packets);
        assert_eq!(conns.len(), 2);
        assert_eq!(conns[0].len(), 3); // A<->B
        assert_eq!(conns[1].len(), 2); // A<->C
        assert_eq!(conns[0].key.client.port, 40000);
        assert_eq!(conns[0].key.server.port, 443);
    }

    #[test]
    fn syn_reorients_mid_capture_flows() {
        // Capture starts with a server->client data packet; the later SYN
        // (connection reuse) re-pins the initiator.
        let packets = vec![
            pkt(B, A, TcpFlags::ACK | TcpFlags::PSH, 0.0),
            pkt(A, B, TcpFlags::ACK, 0.1),
            pkt(A, B, TcpFlags::SYN, 5.0),
        ];
        let conns = assemble_connections(&packets);
        assert_eq!(conns.len(), 1);
        assert_eq!(conns[0].key.client.port, 40000, "SYN sender becomes client");
    }

    #[test]
    fn empty_input() {
        assert!(assemble_connections(&[]).is_empty());
    }

    /// TCP and UDP on the same address/port pair are distinct flows, and
    /// v6 flows group bidirectionally like v4 ones.
    #[test]
    fn protocol_separates_flows_and_groups_v6() {
        let sa = Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1);
        let sb = Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2);
        let tcp_fwd = pkt(A, B, TcpFlags::ACK, 0.0);
        let udp_fwd = Packet::new_udp(
            0.1,
            Ipv4Header::new(A.0, B.0, 64),
            UdpHeader::new(A.1, B.1),
            vec![1],
        );
        let v6_fwd = Packet::new_v6(
            0.2,
            Ipv6Header::new(sa, sb, 64),
            TcpHeader::new(A.1, B.1, 1, 0),
            Vec::new(),
        );
        let v6_rev = Packet::new_v6(
            0.3,
            Ipv6Header::new(sb, sa, 64),
            TcpHeader::new(B.1, A.1, 1, 0),
            Vec::new(),
        );
        assert_ne!(
            CanonicalKey::of(&tcp_fwd),
            CanonicalKey::of(&udp_fwd),
            "same tuple, different protocol"
        );
        assert_ne!(
            CanonicalKey::of(&tcp_fwd),
            CanonicalKey::of(&v6_fwd),
            "v4 and v6 flows never collide"
        );
        assert_eq!(CanonicalKey::of(&v6_fwd), CanonicalKey::of(&v6_rev));
        assert_eq!(
            CanonicalKey::of(&v6_fwd).rss_hash(),
            CanonicalKey::of(&v6_rev).rss_hash()
        );
        let conns = assemble_connections(&[tcp_fwd, udp_fwd, v6_fwd, v6_rev]);
        assert_eq!(conns.len(), 3);
        assert_eq!(conns[2].len(), 2, "both v6 directions in one flow");
    }

    /// The Toeplitz core reproduces the published NDIS RSS verification
    /// vectors (source ‖ destination ‖ source port ‖ destination port,
    /// Microsoft key, IPv4 with ports). If this fails, the hash function
    /// itself — not just its canonical wrapper — has changed.
    #[test]
    fn toeplitz_matches_ndis_verification_suite() {
        let vectors: [PinnedVector; 5] = [
            (
                (Ipv4Addr::new(66, 9, 149, 187), 2794),
                (Ipv4Addr::new(161, 142, 100, 80), 1766),
                0x51cc_c178,
            ),
            (
                (Ipv4Addr::new(199, 92, 111, 2), 14230),
                (Ipv4Addr::new(65, 69, 140, 83), 4739),
                0xc626_b0ea,
            ),
            (
                (Ipv4Addr::new(24, 19, 198, 95), 12898),
                (Ipv4Addr::new(12, 22, 207, 184), 38024),
                0x5c2b_394a,
            ),
            (
                (Ipv4Addr::new(38, 27, 205, 30), 48228),
                (Ipv4Addr::new(209, 142, 163, 6), 2217),
                0xafc7_327f,
            ),
            (
                (Ipv4Addr::new(153, 39, 163, 191), 44251),
                (Ipv4Addr::new(202, 188, 127, 2), 1303),
                0x10e8_28a2,
            ),
        ];
        for ((src, sport), (dst, dport), expect) in vectors {
            let mut data = [0u8; 12];
            data[0..4].copy_from_slice(&src.octets());
            data[4..8].copy_from_slice(&dst.octets());
            data[8..10].copy_from_slice(&sport.to_be_bytes());
            data[10..12].copy_from_slice(&dport.to_be_bytes());
            assert_eq!(
                toeplitz(&data),
                expect,
                "NDIS vector {src}:{sport} -> {dst}:{dport}"
            );
        }
    }

    /// The canonical (symmetric) hash values are pinned so they can never
    /// silently change across releases — sharded pcap replay determinism
    /// and any persisted shard assignment depend on these exact values.
    ///
    /// The values were recomputed once, deliberately, when the protocol
    /// byte joined the hash input (PR 9: the canonical tuple grew from
    /// 12 to 13 bytes, so every symmetric hash changed). The Toeplitz
    /// core itself is unchanged — see
    /// [`toeplitz_matches_ndis_verification_suite`].
    #[test]
    fn canonical_rss_hash_is_pinned() {
        let keys: [PinnedVector; 5] = [
            (
                (Ipv4Addr::new(66, 9, 149, 187), 2794),
                (Ipv4Addr::new(161, 142, 100, 80), 1766),
                0xcd5e_db56,
            ),
            (
                (Ipv4Addr::new(199, 92, 111, 2), 14230),
                (Ipv4Addr::new(65, 69, 140, 83), 4739),
                0x79ae_6ec6,
            ),
            (
                (Ipv4Addr::new(24, 19, 198, 95), 12898),
                (Ipv4Addr::new(12, 22, 207, 184), 38024),
                0x3490_a267,
            ),
            (
                (Ipv4Addr::new(38, 27, 205, 30), 48228),
                (Ipv4Addr::new(209, 142, 163, 6), 2217),
                0x3355_2851,
            ),
            (
                (Ipv4Addr::new(153, 39, 163, 191), 44251),
                (Ipv4Addr::new(202, 188, 127, 2), 1303),
                0x8c7a_328c,
            ),
        ];
        for ((ca, cp), (sa, sp), expect) in keys {
            let fwd = pkt((ca, cp), (sa, sp), TcpFlags::SYN, 0.0);
            let rev = pkt((sa, sp), (ca, cp), TcpFlags::ACK, 0.1);
            assert_eq!(CanonicalKey::of(&fwd).rss_hash(), expect, "{ca}:{cp}");
            assert_eq!(
                CanonicalKey::of(&rev).rss_hash(),
                expect,
                "reverse direction must hash identically"
            );
            let key = FlowKey::new(Endpoint::new(ca, cp), Endpoint::new(sa, sp));
            assert_eq!(CanonicalKey::of_key(&key), CanonicalKey::of(&fwd));
        }
    }

    #[test]
    fn shard_of_is_in_range_and_total() {
        let p = pkt(A, B, TcpFlags::SYN, 0.0);
        let ck = CanonicalKey::of(&p);
        for shards in 1..=16 {
            assert!(ck.shard_of(shards) < shards);
        }
        assert_eq!(ck.shard_of(1), 0, "single shard owns everything");
    }

    #[test]
    fn round_trips_generated_traffic() {
        // Flatten a generated dataset into one interleaved capture, then
        // reassemble: same connections, same packet counts, same labels.
        let conns: Vec<Connection> = {
            // Avoid a dev-dependency cycle: build two tiny flows by hand.
            let packets = vec![
                pkt(A, B, TcpFlags::SYN, 0.0),
                pkt(A, C, TcpFlags::SYN, 0.01),
                pkt(B, A, TcpFlags::SYN | TcpFlags::ACK, 0.02),
                pkt(C, A, TcpFlags::SYN | TcpFlags::ACK, 0.03),
                pkt(A, B, TcpFlags::ACK, 0.04),
                pkt(A, C, TcpFlags::ACK, 0.05),
            ];
            assemble_connections(&packets)
        };
        assert_eq!(conns.len(), 2);
        assert!(conns.iter().all(|c| c.len() == 3));
        assert!(conns
            .iter()
            .all(|c| c.first_index_after_handshake() == Some(3)));
    }
}
