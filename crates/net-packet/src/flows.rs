//! Flow reassembly: grouping a raw packet stream (e.g. a pcap capture)
//! into [`Connection`]s by 4-tuple.
//!
//! This is what turns `pcap::read_pcap` output into CLAP's unit of
//! analysis. Orientation follows the first packet seen for a tuple, unless
//! a later pure SYN identifies the true initiator (captures often start
//! mid-connection).

use crate::{Connection, Endpoint, FlowKey, Packet, TcpFlags};
use std::collections::HashMap;

/// Canonical (order-independent) form of a 4-tuple for hashing: both
/// directions of a flow map to the same key. This is the lookup key of
/// both the offline reassembler below and the streaming per-flow tables
/// in `clap-core`.
#[derive(Debug, PartialEq, Eq, Hash, Clone, Copy)]
pub struct CanonicalKey {
    lo: (u32, u16),
    hi: (u32, u16),
}

impl CanonicalKey {
    /// Canonical key of a packet's 4-tuple.
    pub fn of(p: &Packet) -> CanonicalKey {
        let a = (u32::from(p.ip.src), p.tcp.src_port);
        let b = (u32::from(p.ip.dst), p.tcp.dst_port);
        if a <= b {
            CanonicalKey { lo: a, hi: b }
        } else {
            CanonicalKey { lo: b, hi: a }
        }
    }
}

/// Groups packets into connections by TCP 4-tuple, preserving capture
/// order within each flow.
///
/// * The connection's client/server orientation is taken from the first
///   pure SYN if one exists, else from the first packet of the flow.
/// * Connections are returned in order of first appearance.
pub fn assemble_connections(packets: &[Packet]) -> Vec<Connection> {
    let mut index: HashMap<CanonicalKey, usize> = HashMap::new();
    let mut flows: Vec<(Vec<Packet>, Option<FlowKey>)> = Vec::new();

    for p in packets {
        let ck = CanonicalKey::of(p);
        let slot = *index.entry(ck).or_insert_with(|| {
            flows.push((Vec::new(), None));
            flows.len() - 1
        });
        let (pkts, key) = &mut flows[slot];
        // A pure SYN pins the initiator regardless of capture order.
        let is_pure_syn =
            p.tcp.flags.contains(TcpFlags::SYN) && !p.tcp.flags.contains(TcpFlags::ACK);
        let this_key = FlowKey::new(
            Endpoint::new(p.ip.src, p.tcp.src_port),
            Endpoint::new(p.ip.dst, p.tcp.dst_port),
        );
        match key {
            None => *key = Some(this_key),
            Some(k) if is_pure_syn && k.client != this_key.client => {
                // Reorient: the SYN sender is the real client.
                *k = this_key;
            }
            _ => {}
        }
        pkts.push(p.clone());
    }

    flows
        .into_iter()
        .map(|(packets, key)| Connection {
            key: key.expect("every flow has at least one packet"),
            packets,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ipv4Header, TcpHeader};
    use std::net::Ipv4Addr;

    fn pkt(src: (Ipv4Addr, u16), dst: (Ipv4Addr, u16), flags: TcpFlags, ts: f64) -> Packet {
        let ip = Ipv4Header::new(src.0, dst.0, 64);
        let mut tcp = TcpHeader::new(src.1, dst.1, 100, 0);
        tcp.flags = flags;
        Packet::new(ts, ip, tcp, Vec::new())
    }

    const A: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 1), 40000);
    const B: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 2), 443);
    const C: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 3), 80);

    #[test]
    fn groups_by_tuple_bidirectionally() {
        let packets = vec![
            pkt(A, B, TcpFlags::SYN, 0.0),
            pkt(A, C, TcpFlags::SYN, 0.1),
            pkt(B, A, TcpFlags::SYN | TcpFlags::ACK, 0.2),
            pkt(A, B, TcpFlags::ACK, 0.3),
            pkt(C, A, TcpFlags::SYN | TcpFlags::ACK, 0.4),
        ];
        let conns = assemble_connections(&packets);
        assert_eq!(conns.len(), 2);
        assert_eq!(conns[0].len(), 3); // A<->B
        assert_eq!(conns[1].len(), 2); // A<->C
        assert_eq!(conns[0].key.client.port, 40000);
        assert_eq!(conns[0].key.server.port, 443);
    }

    #[test]
    fn syn_reorients_mid_capture_flows() {
        // Capture starts with a server->client data packet; the later SYN
        // (connection reuse) re-pins the initiator.
        let packets = vec![
            pkt(B, A, TcpFlags::ACK | TcpFlags::PSH, 0.0),
            pkt(A, B, TcpFlags::ACK, 0.1),
            pkt(A, B, TcpFlags::SYN, 5.0),
        ];
        let conns = assemble_connections(&packets);
        assert_eq!(conns.len(), 1);
        assert_eq!(conns[0].key.client.port, 40000, "SYN sender becomes client");
    }

    #[test]
    fn empty_input() {
        assert!(assemble_connections(&[]).is_empty());
    }

    #[test]
    fn round_trips_generated_traffic() {
        // Flatten a generated dataset into one interleaved capture, then
        // reassemble: same connections, same packet counts, same labels.
        let conns: Vec<Connection> = {
            // Avoid a dev-dependency cycle: build two tiny flows by hand.
            let packets = vec![
                pkt(A, B, TcpFlags::SYN, 0.0),
                pkt(A, C, TcpFlags::SYN, 0.01),
                pkt(B, A, TcpFlags::SYN | TcpFlags::ACK, 0.02),
                pkt(C, A, TcpFlags::SYN | TcpFlags::ACK, 0.03),
                pkt(A, B, TcpFlags::ACK, 0.04),
                pkt(A, C, TcpFlags::ACK, 0.05),
            ];
            assemble_connections(&packets)
        };
        assert_eq!(conns.len(), 2);
        assert!(conns.iter().all(|c| c.len() == 3));
        assert!(conns
            .iter()
            .all(|c| c.first_index_after_handshake() == Some(3)));
    }
}
