//! IPv6 header model with extension-header walking.
//!
//! Mirrors the [`crate::Ipv4Header`] philosophy: every field is stored
//! verbatim — including a `payload_length` that lies about the datagram and
//! extension headers whose `hdr_ext_len` overruns the buffer — so the
//! IPv6 extension-header corruption family in `dpi-attacks` can emit
//! ill-formed packets that survive a round trip through the wire format.
//!
//! The parser walks the extension chain for the three "options-shaped"
//! extension types (Hop-by-Hop 0, Routing 43, Destination Options 60),
//! which all share the `next_header ‖ hdr_ext_len ‖ data` layout. Any
//! other next-header value — including the IPv6 Fragment header (44),
//! whose fixed 8-byte layout has no length octet — terminates the chain
//! and is treated as the upper-layer protocol.

use serde::{Deserialize, Serialize};
use std::net::Ipv6Addr;

/// Fixed IPv6 header length in bytes (no extension headers).
pub const IPV6_HEADER_LEN: usize = 40;

/// Hop-by-Hop Options extension header type.
pub const EXT_HOP_BY_HOP: u8 = 0;
/// Routing extension header type.
pub const EXT_ROUTING: u8 = 43;
/// Destination Options extension header type.
pub const EXT_DEST_OPTS: u8 = 60;

/// True for next-header values the parser walks as extension headers.
pub fn is_walkable_extension(proto: u8) -> bool {
    matches!(proto, EXT_HOP_BY_HOP | EXT_ROUTING | EXT_DEST_OPTS)
}

/// One options-shaped extension header, stored verbatim.
///
/// Its own type is implied by position: the first extension's type is the
/// fixed header's `next_header`, each later one the previous extension's
/// `next_header`. For an honest header `data.len() == 8·(hdr_ext_len+1) − 2`;
/// the parser clamps `data` to the buffer but keeps `hdr_ext_len` as
/// written, so a lying length survives re-serialization byte-exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv6ExtHeader {
    /// Next-header value as written on the wire.
    pub next_header: u8,
    /// Length octet as written: header size in 8-byte units, not counting
    /// the first 8 bytes. May disagree with `data.len()`.
    pub hdr_ext_len: u8,
    /// Body bytes after the two fixed octets, verbatim.
    pub data: Vec<u8>,
}

impl Ipv6ExtHeader {
    /// An honest extension header of the claimed size: `data` is padded
    /// with PadN-style zeros to `8·(units+1) − 2` bytes.
    pub fn well_formed(next_header: u8, units: u8, mut data: Vec<u8>) -> Self {
        data.resize(8 * (units as usize + 1) - 2, 0);
        Ipv6ExtHeader {
            next_header,
            hdr_ext_len: units,
            data,
        }
    }

    /// On-wire size of this header as stored (2 fixed octets + body).
    pub fn wire_len(&self) -> usize {
        2 + self.data.len()
    }

    /// True when `hdr_ext_len` agrees with the stored body size.
    pub fn length_consistent(&self) -> bool {
        self.wire_len() == 8 * (self.hdr_ext_len as usize + 1)
    }
}

/// Structured IPv6 header: the 40-byte fixed part plus the walked
/// extension chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv6Header {
    /// IP version. 6 for well-formed packets (stored verbatim).
    pub version: u8,
    /// Traffic class byte (DSCP+ECN).
    pub traffic_class: u8,
    /// 20-bit flow label.
    pub flow_label: u32,
    /// Payload length (extension headers + transport) as written on the
    /// wire; attacks may store lying values.
    pub payload_length: u16,
    /// First next-header value (start of the extension chain).
    pub next_header: u8,
    /// Hop limit (the v6 TTL).
    pub hop_limit: u8,
    pub src: Ipv6Addr,
    pub dst: Ipv6Addr,
    /// Walked extension chain, in wire order.
    pub ext: Vec<Ipv6ExtHeader>,
}

impl Ipv6Header {
    /// A well-formed TCP/IPv6 header with no extensions; `payload_length`
    /// and the next-header chain are finalized by the `Packet`
    /// constructors.
    pub fn new(src: Ipv6Addr, dst: Ipv6Addr, hop_limit: u8) -> Self {
        Ipv6Header {
            version: 6,
            traffic_class: 0,
            flow_label: 0,
            payload_length: 0,
            next_header: crate::ipv4::PROTO_TCP,
            hop_limit,
            src,
            dst,
            ext: Vec::new(),
        }
    }

    /// Actual header length in bytes implied by the structure: the fixed
    /// 40 bytes plus the stored extension bytes (not what `hdr_ext_len`
    /// fields claim).
    pub fn header_len_bytes(&self) -> usize {
        IPV6_HEADER_LEN + self.ext.iter().map(Ipv6ExtHeader::wire_len).sum::<usize>()
    }

    /// The upper-layer protocol at the end of the extension chain.
    pub fn final_protocol(&self) -> u8 {
        self.ext
            .last()
            .map(|e| e.next_header)
            .unwrap_or(self.next_header)
    }

    /// The extension-header types in chain order (each header's type is
    /// the previous link's next-header value).
    pub fn ext_types(&self) -> Vec<u8> {
        let mut types = Vec::with_capacity(self.ext.len());
        let mut cur = self.next_header;
        for e in &self.ext {
            types.push(cur);
            cur = e.next_header;
        }
        types
    }

    /// True when the chain is anomalous: any extension present at all is
    /// already unusual on the open Internet (the v6 analogue of IPv4
    /// options being essentially extinct). This feeds the "non-standard
    /// IP options" feature channel for v6.
    pub fn ext_chain_anomalous(&self) -> bool {
        !self.ext.is_empty()
    }

    /// True when the chain is outright malformed: a Hop-by-Hop header not
    /// in first position (RFC 8200 requires it first) or a lying
    /// `hdr_ext_len`.
    pub fn ext_chain_malformed(&self) -> bool {
        let hop_by_hop_misplaced = self
            .ext_types()
            .iter()
            .skip(1)
            .any(|&t| t == EXT_HOP_BY_HOP);
        hop_by_hop_misplaced || self.ext.iter().any(|e| !e.length_consistent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr() -> Ipv6Header {
        Ipv6Header::new(
            Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1),
            Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2),
            64,
        )
    }

    #[test]
    fn base_header_is_40_bytes() {
        let h = hdr();
        assert_eq!(h.header_len_bytes(), 40);
        assert_eq!(h.final_protocol(), crate::ipv4::PROTO_TCP);
        assert!(!h.ext_chain_anomalous());
    }

    #[test]
    fn ext_chain_walks_types_and_lengths() {
        let mut h = hdr();
        h.next_header = EXT_HOP_BY_HOP;
        h.ext = vec![
            Ipv6ExtHeader::well_formed(EXT_DEST_OPTS, 0, vec![1, 4, 0, 0, 0, 0]),
            Ipv6ExtHeader::well_formed(crate::ipv4::PROTO_TCP, 1, vec![]),
        ];
        assert_eq!(h.header_len_bytes(), 40 + 8 + 16);
        assert_eq!(h.final_protocol(), crate::ipv4::PROTO_TCP);
        assert_eq!(h.ext_types(), vec![EXT_HOP_BY_HOP, EXT_DEST_OPTS]);
        // A well-formed chain is still "anomalous" for the feature channel:
        // benign Internet traffic virtually never carries extensions.
        assert!(h.ext_chain_anomalous());
        assert!(!h.ext_chain_malformed());
    }

    #[test]
    fn misplaced_hop_by_hop_is_malformed() {
        let mut h = hdr();
        h.next_header = EXT_DEST_OPTS;
        h.ext = vec![
            Ipv6ExtHeader::well_formed(EXT_HOP_BY_HOP, 0, vec![]),
            Ipv6ExtHeader::well_formed(crate::ipv4::PROTO_TCP, 0, vec![]),
        ];
        assert!(h.ext_chain_malformed(), "hop-by-hop must come first");
    }

    #[test]
    fn lying_ext_len_is_flagged() {
        let mut ext = Ipv6ExtHeader::well_formed(crate::ipv4::PROTO_TCP, 0, vec![]);
        assert!(ext.length_consistent());
        ext.hdr_ext_len = 5; // claims 48 bytes, stores 8
        assert!(!ext.length_consistent());
    }
}
