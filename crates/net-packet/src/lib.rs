//! IPv4/TCP packet model for the CLAP reproduction.
//!
//! This crate is the wire-format substrate of the workspace. It provides:
//!
//! * a *structured* representation of IPv4 and TCP headers ([`Ipv4Header`],
//!   [`TcpHeader`], [`TcpOption`]) in which every scalar field is stored
//!   verbatim — including fields that DPI-evasion attacks deliberately
//!   corrupt (checksums, lengths, data offsets, versions). Serialization
//!   writes the stored values as-is, so an attack simulator can produce
//!   ill-formed packets that survive a round trip through the wire format;
//! * Internet checksum computation and validation ([`checksum`]);
//! * lenient wire-format parsing that never panics on hostile input
//!   ([`wire`]);
//! * classic libpcap file I/O with the `LINKTYPE_RAW` link type so traces
//!   interoperate with tcpdump/Wireshark ([`pcap`]);
//! * connection-level containers ([`Connection`], [`Direction`],
//!   [`FlowKey`]) shared by the traffic generator, the attack simulator and
//!   the detector.
//!
//! The design follows the smoltcp philosophy: plain data structures, explicit
//! state, no macro tricks, and `Result`-based error handling throughout.

pub mod checksum;
pub mod connection;
pub mod flows;
pub mod ipv4;
pub mod pcap;
pub mod tcp;
pub mod wire;

pub use connection::{Connection, Direction, Endpoint, FlowKey};
pub use flows::{assemble_connections, CanonicalKey};
pub use ipv4::Ipv4Header;
pub use tcp::{TcpFlags, TcpHeader, TcpOption};

use serde::{Deserialize, Serialize};

/// One captured TCP/IPv4 packet: capture timestamp, both headers and payload.
///
/// `timestamp` is in seconds relative to the start of the trace. Payload is
/// kept as raw bytes; CLAP itself never inspects payload contents (the paper
/// trains on payload-stripped captures) but payload *length* is a feature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Capture time in seconds relative to trace start.
    pub timestamp: f64,
    /// IPv4 header, stored field-by-field (possibly deliberately invalid).
    pub ip: Ipv4Header,
    /// TCP header, stored field-by-field (possibly deliberately invalid).
    pub tcp: TcpHeader,
    /// TCP payload bytes.
    pub payload: Vec<u8>,
}

impl Packet {
    /// Builds a packet with consistent length/offset fields and correct
    /// checksums from the given headers and payload.
    pub fn new(timestamp: f64, mut ip: Ipv4Header, mut tcp: TcpHeader, payload: Vec<u8>) -> Self {
        tcp.normalize_data_offset();
        ip.ihl = ipv4::BASE_IHL + (ip.options.len() as u8).div_ceil(4);
        ip.total_length = (ip.header_len_bytes() + tcp.header_len_bytes() + payload.len()) as u16;
        let mut pkt = Packet {
            timestamp,
            ip,
            tcp,
            payload,
        };
        pkt.fill_checksums();
        pkt
    }

    /// Recomputes and stores correct IPv4 and TCP checksums.
    pub fn fill_checksums(&mut self) {
        self.ip.checksum = 0;
        self.ip.checksum = checksum::ipv4_checksum(&self.ip);
        self.tcp.checksum = 0;
        self.tcp.checksum = checksum::tcp_checksum(&self.ip, &self.tcp, &self.payload);
    }

    /// True when the stored IPv4 header checksum matches the header contents.
    pub fn ip_checksum_valid(&self) -> bool {
        checksum::ipv4_checksum_ignoring_stored(&self.ip) == self.ip.checksum
    }

    /// True when the stored TCP checksum matches the segment contents
    /// (including the pseudo-header derived from the IP addresses).
    pub fn tcp_checksum_valid(&self) -> bool {
        checksum::tcp_checksum_ignoring_stored(&self.ip, &self.tcp, &self.payload)
            == self.tcp.checksum
    }

    /// Total on-wire length implied by the *actual* structure (not the
    /// possibly-corrupted `total_length` field).
    pub fn wire_len(&self) -> usize {
        self.ip.header_len_bytes() + self.tcp.header_len_bytes() + self.payload.len()
    }

    /// Sequence-space length consumed by this segment (payload + SYN + FIN).
    pub fn seq_len(&self) -> u32 {
        let mut len = self.payload.len() as u32;
        if self.tcp.flags.contains(TcpFlags::SYN) {
            len += 1;
        }
        if self.tcp.flags.contains(TcpFlags::FIN) {
            len += 1;
        }
        len
    }

    /// Serializes to raw IPv4 bytes (suitable for `LINKTYPE_RAW` pcap).
    pub fn to_bytes(&self) -> Vec<u8> {
        wire::serialize_packet(self)
    }

    /// Parses raw IPv4 bytes. Lenient: tolerates corrupted length fields by
    /// falling back to the actual buffer size; returns `Err` only when the
    /// buffer is too short to contain fixed headers.
    pub fn from_bytes(timestamp: f64, data: &[u8]) -> Result<Self, wire::ParseError> {
        wire::parse_packet(timestamp, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn sample() -> Packet {
        let ip = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 64);
        let mut tcp = TcpHeader::new(40000, 80, 1000, 2000);
        tcp.flags = TcpFlags::ACK | TcpFlags::PSH;
        tcp.options.push(TcpOption::Timestamps {
            tsval: 77,
            tsecr: 66,
        });
        Packet::new(0.5, ip, tcp, b"hello".to_vec())
    }

    #[test]
    fn new_packet_has_valid_checksums() {
        let p = sample();
        assert!(p.ip_checksum_valid());
        assert!(p.tcp_checksum_valid());
    }

    #[test]
    fn corrupting_checksum_is_detected() {
        let mut p = sample();
        p.tcp.checksum ^= 0xdead;
        assert!(!p.tcp_checksum_valid());
        p = sample();
        p.ip.checksum ^= 0x1;
        assert!(!p.ip_checksum_valid());
    }

    #[test]
    fn total_length_consistent() {
        let p = sample();
        // 20 IP + 20 TCP + 12 options (10 rounded to 12) + 5 payload
        assert_eq!(p.ip.total_length as usize, p.wire_len());
        assert_eq!(p.wire_len(), 20 + 20 + 12 + 5);
    }

    #[test]
    fn seq_len_counts_syn_fin() {
        let mut p = sample();
        assert_eq!(p.seq_len(), 5);
        p.tcp.flags |= TcpFlags::SYN;
        assert_eq!(p.seq_len(), 6);
        p.tcp.flags |= TcpFlags::FIN;
        assert_eq!(p.seq_len(), 7);
    }

    #[test]
    fn mutating_payload_invalidates_tcp_checksum_only() {
        let mut p = sample();
        p.payload[0] ^= 0xff;
        assert!(p.ip_checksum_valid());
        assert!(!p.tcp_checksum_valid());
    }
}
