//! Packet model for the CLAP reproduction: IPv4/IPv6 × TCP/UDP, with
//! IPv4 fragment reassembly.
//!
//! This crate is the wire-format substrate of the workspace. It provides:
//!
//! * a *structured* representation of the network and transport headers
//!   ([`Ipv4Header`], [`Ipv6Header`], [`TcpHeader`], [`UdpHeader`],
//!   [`TcpOption`]) in which every scalar field is stored verbatim —
//!   including fields that DPI-evasion attacks deliberately corrupt
//!   (checksums, lengths, data offsets, versions, extension chains).
//!   Serialization writes the stored values as-is, so an attack simulator
//!   can produce ill-formed packets that survive a round trip through the
//!   wire format;
//! * Internet checksum computation and validation for both IP versions and
//!   both transports ([`checksum`]);
//! * lenient wire-format parsing that never panics on hostile input
//!   ([`wire`]);
//! * an IPv4 fragment reassembler with a bounded, expiring fragment cache
//!   ([`frag`]);
//! * classic libpcap file I/O with the `LINKTYPE_RAW` link type so traces
//!   interoperate with tcpdump/Wireshark ([`pcap`]);
//! * connection-level containers ([`Connection`], [`Direction`],
//!   [`FlowKey`]) shared by the traffic generator, the attack simulator and
//!   the detector.
//!
//! # Version / fragment dispatch
//!
//! [`wire::parse_packet`] dispatches on the version nibble of the first
//! byte: `6` takes the IPv6 path (fixed header, then extension-header
//! walking for the options-shaped types 0/43/60 until an upper-layer
//! protocol is reached); every other value takes the IPv4 path with the
//! version stored verbatim, so deliberately corrupted versions (an attack
//! sets e.g. 5) still parse as the corrupt-v4 packets they are on the wire.
//! On the v4 path, a packet with a non-zero fragment offset **or** the MF
//! flag set is *not* decoded as a standalone transport packet — decoding
//! mid-datagram bytes as a TCP header is how phantom flows get fabricated.
//! It returns [`wire::ParseError::Fragment`] instead, and the caller routes
//! the raw bytes to a [`frag::Reassembler`] (as [`pcap::read_pcap`] does
//! internally), which reconstructs the full datagram once all pieces have
//! arrived and records whether overlapping fragments were seen.
//!
//! # Lenient-parse contract
//!
//! Parsing never panics on hostile input and errs toward preserving the
//! wire image:
//!
//! * header-length fields (IHL, TCP data offset, v6 `hdr_ext_len`) are
//!   taken as written but clamped to the buffer when slicing;
//! * the payload ends at the IP datagram length (`total_length` /
//!   40 + `payload_length`) when that value is plausible — at least large
//!   enough for the fixed headers and no larger than the capture — so
//!   link-layer trailer padding is not miscounted as payload; an
//!   implausible datagram length falls back to the captured buffer;
//! * structurally unreadable TCP options are preserved verbatim as
//!   [`TcpOption::Raw`] so re-serialization reproduces the exact bytes;
//! * `Err` is returned only when the buffer cannot contain the fixed
//!   headers, the upper protocol is neither TCP nor UDP, or the packet is
//!   a fragment awaiting reassembly.
//!
//! The design follows the smoltcp philosophy: plain data structures,
//! explicit state, no macro tricks, and `Result`-based error handling.

pub mod checksum;
pub mod connection;
pub mod flows;
pub mod frag;
pub mod ipv4;
pub mod ipv6;
pub mod pcap;
pub mod tcp;
pub mod udp;
pub mod wire;

pub use connection::{Connection, Direction, Endpoint, FlowKey};
pub use flows::{assemble_connections, CanonicalKey};
pub use frag::{fragment_datagram, Reassembler, ReassemblyInfo};
pub use ipv4::Ipv4Header;
pub use ipv6::{Ipv6ExtHeader, Ipv6Header};
pub use tcp::{TcpFlags, TcpHeader, TcpOption};
pub use udp::UdpHeader;

use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// Network-layer header: IPv4 or IPv6.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IpHeader {
    V4(Ipv4Header),
    V6(Ipv6Header),
}

impl IpHeader {
    /// Source address, width-erased.
    pub fn src(&self) -> IpAddr {
        match self {
            IpHeader::V4(h) => IpAddr::V4(h.src),
            IpHeader::V6(h) => IpAddr::V6(h.src),
        }
    }

    /// Destination address, width-erased.
    pub fn dst(&self) -> IpAddr {
        match self {
            IpHeader::V4(h) => IpAddr::V4(h.dst),
            IpHeader::V6(h) => IpAddr::V6(h.dst),
        }
    }

    /// TTL (v4) / hop limit (v6).
    pub fn ttl(&self) -> u8 {
        match self {
            IpHeader::V4(h) => h.ttl,
            IpHeader::V6(h) => h.hop_limit,
        }
    }

    /// Upper-layer protocol number: the v4 protocol field, or the value at
    /// the end of the v6 extension chain.
    pub fn protocol(&self) -> u8 {
        match self {
            IpHeader::V4(h) => h.protocol,
            IpHeader::V6(h) => h.final_protocol(),
        }
    }

    /// Version nibble as written on the wire.
    pub fn version_field(&self) -> u8 {
        match self {
            IpHeader::V4(h) => h.version,
            IpHeader::V6(h) => h.version,
        }
    }

    /// Structure-derived header length in bytes (v6: including stored
    /// extension headers).
    pub fn header_len_bytes(&self) -> usize {
        match self {
            IpHeader::V4(h) => h.header_len_bytes(),
            IpHeader::V6(h) => h.header_len_bytes(),
        }
    }

    /// The whole-datagram length claimed on the wire: v4 `total_length`,
    /// or v6 fixed header + `payload_length`.
    pub fn total_length_field(&self) -> usize {
        match self {
            IpHeader::V4(h) => h.total_length as usize,
            IpHeader::V6(h) => ipv6::IPV6_HEADER_LEN + h.payload_length as usize,
        }
    }

    pub fn is_v4(&self) -> bool {
        matches!(self, IpHeader::V4(_))
    }

    pub fn v4(&self) -> Option<&Ipv4Header> {
        match self {
            IpHeader::V4(h) => Some(h),
            IpHeader::V6(_) => None,
        }
    }

    pub fn v4_mut(&mut self) -> Option<&mut Ipv4Header> {
        match self {
            IpHeader::V4(h) => Some(h),
            IpHeader::V6(_) => None,
        }
    }

    pub fn v6(&self) -> Option<&Ipv6Header> {
        match self {
            IpHeader::V6(h) => Some(h),
            IpHeader::V4(_) => None,
        }
    }

    pub fn v6_mut(&mut self) -> Option<&mut Ipv6Header> {
        match self {
            IpHeader::V6(h) => Some(h),
            IpHeader::V4(_) => None,
        }
    }
}

/// Transport-layer header: TCP or UDP.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transport {
    Tcp(TcpHeader),
    Udp(UdpHeader),
}

impl Transport {
    pub fn src_port(&self) -> u16 {
        match self {
            Transport::Tcp(t) => t.src_port,
            Transport::Udp(u) => u.src_port,
        }
    }

    pub fn dst_port(&self) -> u16 {
        match self {
            Transport::Tcp(t) => t.dst_port,
            Transport::Udp(u) => u.dst_port,
        }
    }

    /// Structure-derived header length in bytes.
    pub fn header_len_bytes(&self) -> usize {
        match self {
            Transport::Tcp(t) => t.header_len_bytes(),
            Transport::Udp(u) => u.header_len_bytes(),
        }
    }

    /// IP protocol number of this transport (6 or 17).
    pub fn protocol_number(&self) -> u8 {
        match self {
            Transport::Tcp(_) => ipv4::PROTO_TCP,
            Transport::Udp(_) => ipv4::PROTO_UDP,
        }
    }

    pub fn tcp(&self) -> Option<&TcpHeader> {
        match self {
            Transport::Tcp(t) => Some(t),
            Transport::Udp(_) => None,
        }
    }

    pub fn tcp_mut(&mut self) -> Option<&mut TcpHeader> {
        match self {
            Transport::Tcp(t) => Some(t),
            Transport::Udp(_) => None,
        }
    }

    pub fn udp(&self) -> Option<&UdpHeader> {
        match self {
            Transport::Udp(u) => Some(u),
            Transport::Tcp(_) => None,
        }
    }

    pub fn udp_mut(&mut self) -> Option<&mut UdpHeader> {
        match self {
            Transport::Udp(u) => Some(u),
            Transport::Tcp(_) => None,
        }
    }
}

/// One captured packet: capture timestamp, network + transport headers and
/// payload.
///
/// `timestamp` is in seconds relative to the start of the trace. Payload is
/// kept as raw bytes; CLAP itself never inspects payload contents (the paper
/// trains on payload-stripped captures) but payload *length* is a feature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Capture time in seconds relative to trace start.
    pub timestamp: f64,
    /// Network header, stored field-by-field (possibly deliberately invalid).
    pub ip: IpHeader,
    /// Transport header, stored field-by-field (possibly deliberately
    /// invalid).
    pub transport: Transport,
    /// Transport payload bytes.
    pub payload: Vec<u8>,
    /// Set when this packet was reconstructed from IPv4 fragments; records
    /// how the reassembly went (fragment count, overlaps). `None` for
    /// packets that arrived whole.
    pub reassembly: Option<ReassemblyInfo>,
    /// Captured bytes past the end of the IP datagram: link-layer trailer
    /// padding on short frames, or bytes a lying length field excludes.
    /// Never part of the payload, the checksums or any feature — an
    /// endhost ignores them — but re-emitted by [`Packet::to_bytes`] so a
    /// capture round trip preserves the wire image bit-exactly instead of
    /// sanitizing deliberately corrupt length fields.
    pub trailer: Vec<u8>,
}

impl Packet {
    /// Builds a TCP/IPv4 packet with consistent length/offset fields and
    /// correct checksums from the given headers and payload.
    pub fn new(timestamp: f64, ip: Ipv4Header, tcp: TcpHeader, payload: Vec<u8>) -> Self {
        Packet::build(timestamp, IpHeader::V4(ip), Transport::Tcp(tcp), payload)
    }

    /// Builds a TCP/IPv6 packet (extension chain taken from `ip`).
    pub fn new_v6(timestamp: f64, ip: Ipv6Header, tcp: TcpHeader, payload: Vec<u8>) -> Self {
        Packet::build(timestamp, IpHeader::V6(ip), Transport::Tcp(tcp), payload)
    }

    /// Builds a UDP/IPv4 packet.
    pub fn new_udp(timestamp: f64, ip: Ipv4Header, udp: UdpHeader, payload: Vec<u8>) -> Self {
        Packet::build(timestamp, IpHeader::V4(ip), Transport::Udp(udp), payload)
    }

    /// Builds a UDP/IPv6 packet.
    pub fn new_udp6(timestamp: f64, ip: Ipv6Header, udp: UdpHeader, payload: Vec<u8>) -> Self {
        Packet::build(timestamp, IpHeader::V6(ip), Transport::Udp(udp), payload)
    }

    /// Normalizes lengths/offsets for a well-formed packet and fills
    /// checksums. Corruption (for attack crafting) happens *after*
    /// construction by mutating fields directly.
    fn build(timestamp: f64, mut ip: IpHeader, mut transport: Transport, payload: Vec<u8>) -> Self {
        let proto = transport.protocol_number();
        if let Transport::Tcp(tcp) = &mut transport {
            tcp.normalize_data_offset();
        }
        let transport_len = transport.header_len_bytes() + payload.len();
        if let Transport::Udp(udp) = &mut transport {
            udp.length = transport_len as u16;
        }
        match &mut ip {
            IpHeader::V4(h) => {
                h.protocol = proto;
                h.ihl = ipv4::BASE_IHL + (h.options.len() as u8).div_ceil(4);
                h.total_length = (h.header_len_bytes() + transport_len) as u16;
            }
            IpHeader::V6(h) => {
                match h.ext.last_mut() {
                    Some(last) => last.next_header = proto,
                    None => h.next_header = proto,
                }
                h.payload_length =
                    (h.header_len_bytes() - ipv6::IPV6_HEADER_LEN + transport_len) as u16;
            }
        }
        let mut pkt = Packet {
            timestamp,
            ip,
            transport,
            payload,
            reassembly: None,
            trailer: Vec::new(),
        };
        pkt.fill_checksums();
        pkt
    }

    /// TCP header of a packet known to be TCP.
    ///
    /// Panics on UDP packets — for constructors, attack simulators and
    /// tests that built the packet and know its shape. Dispatching code
    /// must match on [`Packet::transport`] instead.
    #[track_caller]
    pub fn tcp(&self) -> &TcpHeader {
        self.transport.tcp().expect("not a TCP packet")
    }

    /// Mutable [`Packet::tcp`]; same known-shape contract.
    #[track_caller]
    pub fn tcp_mut(&mut self) -> &mut TcpHeader {
        self.transport.tcp_mut().expect("not a TCP packet")
    }

    /// IPv4 header of a packet known to be IPv4; panics on IPv6
    /// (same known-shape contract as [`Packet::tcp`]).
    #[track_caller]
    pub fn ipv4(&self) -> &Ipv4Header {
        self.ip.v4().expect("not an IPv4 packet")
    }

    /// Mutable [`Packet::ipv4`]; same known-shape contract.
    #[track_caller]
    pub fn ipv4_mut(&mut self) -> &mut Ipv4Header {
        self.ip.v4_mut().expect("not an IPv4 packet")
    }

    /// UDP header of a packet known to be UDP; panics on TCP.
    #[track_caller]
    pub fn udp(&self) -> &UdpHeader {
        self.transport.udp().expect("not a UDP packet")
    }

    /// Mutable [`Packet::udp`]; same known-shape contract.
    #[track_caller]
    pub fn udp_mut(&mut self) -> &mut UdpHeader {
        self.transport.udp_mut().expect("not a UDP packet")
    }

    /// Source address, width-erased.
    pub fn src_addr(&self) -> IpAddr {
        self.ip.src()
    }

    /// Destination address, width-erased.
    pub fn dst_addr(&self) -> IpAddr {
        self.ip.dst()
    }

    pub fn src_port(&self) -> u16 {
        self.transport.src_port()
    }

    pub fn dst_port(&self) -> u16 {
        self.transport.dst_port()
    }

    /// TCP flags, or the empty set for non-TCP packets — so flag tests
    /// (`is this a pure SYN?`) stay branch-free at call sites.
    pub fn tcp_flags(&self) -> TcpFlags {
        match &self.transport {
            Transport::Tcp(t) => t.flags,
            Transport::Udp(_) => TcpFlags::empty(),
        }
    }

    pub fn is_tcp(&self) -> bool {
        matches!(self.transport, Transport::Tcp(_))
    }

    pub fn is_udp(&self) -> bool {
        matches!(self.transport, Transport::Udp(_))
    }

    /// Recomputes and stores correct network and transport checksums
    /// (IPv6 has no header checksum; UDP over IPv4 maps a computed 0 to
    /// `0xffff` per RFC 768).
    pub fn fill_checksums(&mut self) {
        if let IpHeader::V4(h) = &mut self.ip {
            h.checksum = 0;
            h.checksum = checksum::ipv4_checksum(h);
        }
        match &mut self.transport {
            Transport::Tcp(t) => t.checksum = 0,
            Transport::Udp(u) => u.checksum = 0,
        }
        let sum = checksum::transport_checksum(&self.ip, &self.transport, &self.payload);
        match &mut self.transport {
            Transport::Tcp(t) => t.checksum = sum,
            Transport::Udp(u) => u.checksum = if sum == 0 { 0xffff } else { sum },
        }
    }

    /// True when the stored IP header checksum matches the header contents.
    /// IPv6 has no header checksum, so v6 packets always validate.
    pub fn ip_checksum_valid(&self) -> bool {
        match &self.ip {
            IpHeader::V4(h) => checksum::ipv4_checksum_ignoring_stored(h) == h.checksum,
            IpHeader::V6(_) => true,
        }
    }

    /// True when the stored transport checksum matches the segment contents
    /// (including the pseudo-header derived from the IP addresses). UDP
    /// over IPv4 with a zero checksum is "checksum disabled" and validates;
    /// over IPv6 a zero checksum is forbidden and fails.
    pub fn transport_checksum_valid(&self) -> bool {
        let stored = match &self.transport {
            Transport::Tcp(t) => t.checksum,
            Transport::Udp(u) => {
                if u.checksum == 0 {
                    return self.ip.is_v4();
                }
                u.checksum
            }
        };
        let computed =
            checksum::transport_checksum_ignoring_stored(&self.ip, &self.transport, &self.payload);
        // A computed 0 is transmitted as 0xffff for UDP (0 means "none").
        let computed = match &self.transport {
            Transport::Udp(_) if computed == 0 => 0xffff,
            _ => computed,
        };
        computed == stored
    }

    /// Legacy name for [`Packet::transport_checksum_valid`] (predates UDP
    /// support); validates whichever transport the packet carries.
    pub fn tcp_checksum_valid(&self) -> bool {
        self.transport_checksum_valid()
    }

    /// Total on-wire length implied by the *actual* structure (not the
    /// possibly-corrupted length fields).
    pub fn wire_len(&self) -> usize {
        self.ip.header_len_bytes() + self.transport.header_len_bytes() + self.payload.len()
    }

    /// Sequence-space length consumed by this segment (payload + SYN + FIN
    /// for TCP; plain payload length for UDP, which has no sequence space
    /// but where the same quantity drives length features).
    pub fn seq_len(&self) -> u32 {
        let mut len = self.payload.len() as u32;
        if let Transport::Tcp(t) = &self.transport {
            if t.flags.contains(TcpFlags::SYN) {
                len += 1;
            }
            if t.flags.contains(TcpFlags::FIN) {
                len += 1;
            }
        }
        len
    }

    /// Serializes to raw IP bytes (suitable for `LINKTYPE_RAW` pcap).
    pub fn to_bytes(&self) -> Vec<u8> {
        wire::serialize_packet(self)
    }

    /// Parses raw IP bytes; see the crate docs for the dispatch and
    /// lenient-parse contract.
    pub fn from_bytes(timestamp: f64, data: &[u8]) -> Result<Self, wire::ParseError> {
        wire::parse_packet(timestamp, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn sample() -> Packet {
        let ip = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 64);
        let mut tcp = TcpHeader::new(40000, 80, 1000, 2000);
        tcp.flags = TcpFlags::ACK | TcpFlags::PSH;
        tcp.options.push(TcpOption::Timestamps {
            tsval: 77,
            tsecr: 66,
        });
        Packet::new(0.5, ip, tcp, b"hello".to_vec())
    }

    fn sample_udp6() -> Packet {
        let ip = Ipv6Header::new(
            Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1),
            Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2),
            64,
        );
        let udp = UdpHeader::new(40000, 53);
        Packet::new_udp6(0.5, ip, udp, b"query".to_vec())
    }

    #[test]
    fn new_packet_has_valid_checksums() {
        let p = sample();
        assert!(p.ip_checksum_valid());
        assert!(p.transport_checksum_valid());
    }

    #[test]
    fn corrupting_checksum_is_detected() {
        let mut p = sample();
        p.tcp_mut().checksum ^= 0xdead;
        assert!(!p.transport_checksum_valid());
        p = sample();
        p.ipv4_mut().checksum ^= 0x1;
        assert!(!p.ip_checksum_valid());
    }

    #[test]
    fn total_length_consistent() {
        let p = sample();
        // 20 IP + 20 TCP + 12 options (10 rounded to 12) + 5 payload
        assert_eq!(p.ipv4().total_length as usize, p.wire_len());
        assert_eq!(p.wire_len(), 20 + 20 + 12 + 5);
    }

    #[test]
    fn seq_len_counts_syn_fin() {
        let mut p = sample();
        assert_eq!(p.seq_len(), 5);
        p.tcp_mut().flags |= TcpFlags::SYN;
        assert_eq!(p.seq_len(), 6);
        p.tcp_mut().flags |= TcpFlags::FIN;
        assert_eq!(p.seq_len(), 7);
    }

    #[test]
    fn mutating_payload_invalidates_tcp_checksum_only() {
        let mut p = sample();
        p.payload[0] ^= 0xff;
        assert!(p.ip_checksum_valid());
        assert!(!p.transport_checksum_valid());
    }

    #[test]
    fn protocol_udp6_packet_is_consistent() {
        let p = sample_udp6();
        assert!(p.is_udp());
        assert!(!p.ip.is_v4());
        assert_eq!(p.ip.protocol(), ipv4::PROTO_UDP);
        assert_eq!(p.udp().length as usize, 8 + 5);
        assert!(p.ip_checksum_valid(), "v6 has no header checksum");
        assert!(p.transport_checksum_valid());
        assert_eq!(p.seq_len(), 5);
        assert_eq!(p.tcp_flags(), TcpFlags::empty());
    }

    #[test]
    fn protocol_udp_zero_checksum_rules() {
        // v4: checksum 0 means "disabled" and validates.
        let ip = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 64);
        let mut p = Packet::new_udp(0.0, ip, UdpHeader::new(1000, 53), b"x".to_vec());
        p.udp_mut().checksum = 0;
        assert!(p.transport_checksum_valid());
        // v6: checksum 0 is forbidden.
        let mut q = sample_udp6();
        q.udp_mut().checksum = 0;
        assert!(!q.transport_checksum_valid());
    }
}
