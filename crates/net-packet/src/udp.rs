//! UDP header model.
//!
//! Like [`crate::Ipv4Header`], every field is stored verbatim so that
//! deliberately inconsistent values — a `length` that lies about the
//! datagram, a zeroed or garbled checksum — survive serialization. The
//! UDP length/checksum evasion family in `dpi-attacks` depends on this.

use serde::{Deserialize, Serialize};

/// Fixed UDP header length in bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// Structured UDP header.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    /// Header + payload length in bytes as written on the wire. Attacks
    /// may store values longer or shorter than the actual datagram.
    pub length: u16,
    /// Checksum as written on the wire. `0` means "no checksum" in IPv4
    /// (legal) and is forbidden over IPv6.
    pub checksum: u16,
}

impl UdpHeader {
    /// A well-formed UDP header; `length` and `checksum` are finalized by
    /// [`crate::Packet::new_udp`] / [`crate::Packet::new_udp6`].
    pub fn new(src_port: u16, dst_port: u16) -> Self {
        UdpHeader {
            src_port,
            dst_port,
            length: 0,
            checksum: 0,
        }
    }

    /// Actual header length in bytes (always 8; provided for symmetry with
    /// the TCP header's structure-derived length).
    pub fn header_len_bytes(&self) -> usize {
        UDP_HEADER_LEN
    }

    /// True when the on-wire `length` field agrees with the actual
    /// header + payload size.
    pub fn length_consistent(&self, payload_len: usize) -> bool {
        self.length as usize == UDP_HEADER_LEN + payload_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_consistency() {
        let mut h = UdpHeader::new(53, 40000);
        h.length = 8 + 12;
        assert!(h.length_consistent(12));
        assert!(!h.length_consistent(13));
        h.length = 3; // shorter than its own header: always inconsistent
        assert!(!h.length_consistent(0));
    }
}
