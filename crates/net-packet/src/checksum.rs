//! RFC 1071 Internet checksum and the TCP/UDP pseudo-header checksums,
//! over both IPv4 and IPv6.
//!
//! The header checksums are computed by streaming the wire-format field
//! bytes through a chunked accumulator instead of serializing the header
//! to a scratch buffer first: checksum validation sits on the reference
//! tracker's per-packet path, where a heap allocation per packet would
//! dominate the flow-table work.

use crate::{IpHeader, Ipv4Header, TcpFlags, TcpHeader, Transport, UdpHeader};

/// Ones'-complement sum over 16-bit words with odd-byte handling, folded to
/// 16 bits. `initial` allows chaining (pseudo-header then segment).
pub fn ones_complement_sum(data: &[u8], initial: u32) -> u32 {
    let mut sum = initial;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// Folds carries and complements the running sum into the final checksum.
pub fn finalize(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Chunk-streaming RFC 1071 accumulator: feed the byte stream in arbitrary
/// pieces (header fields, option chunks, payload) and the pairing into
/// 16-bit big-endian words carries across chunk boundaries exactly as if
/// the stream were contiguous.
#[derive(Default)]
struct Summer {
    sum: u32,
    pending: Option<u8>,
}

impl Summer {
    fn push(&mut self, mut data: &[u8]) {
        if let Some(hi) = self.pending.take() {
            match data.split_first() {
                Some((&lo, rest)) => {
                    self.sum += u32::from(u16::from_be_bytes([hi, lo]));
                    data = rest;
                }
                None => {
                    self.pending = Some(hi);
                    return;
                }
            }
        }
        let mut chunks = data.chunks_exact(2);
        for chunk in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            self.pending = Some(*last);
        }
    }

    fn finish(self) -> u32 {
        match self.pending {
            Some(hi) => self.sum + u32::from(u16::from_be_bytes([hi, 0])),
            None => self.sum,
        }
    }
}

/// Sums the serialized IPv4 header with the checksum field replaced by
/// `checksum_field`, without materializing the bytes.
fn ipv4_sum(h: &Ipv4Header, checksum_field: u16) -> u16 {
    let mut s = Summer::default();
    s.push(&[(h.version << 4) | (h.ihl & 0x0f), h.tos]);
    s.push(&h.total_length.to_be_bytes());
    s.push(&h.identification.to_be_bytes());
    let frag = (u16::from(h.flags & 0x7) << 13) | (h.fragment_offset & 0x1fff);
    s.push(&frag.to_be_bytes());
    s.push(&[h.ttl, h.protocol]);
    s.push(&checksum_field.to_be_bytes());
    s.push(&h.src.octets());
    s.push(&h.dst.octets());
    s.push(&h.options);
    // Zero padding to the 4-byte boundary cannot change the sum; skip it.
    finalize(s.finish())
}

/// Adds the pseudo-header for `ip` (v4: 12 bytes; v6: 40 bytes) to the
/// running sum. `proto` is the transport protocol number and `length` the
/// transport length (header + payload) used in the pseudo-header.
fn pseudo_header_sum(ip: &IpHeader, proto: u8, length: u32, segment_sum: u32) -> u32 {
    match ip {
        IpHeader::V4(h) => {
            let mut pseudo = [0u8; 12];
            pseudo[0..4].copy_from_slice(&h.src.octets());
            pseudo[4..8].copy_from_slice(&h.dst.octets());
            pseudo[8] = 0;
            pseudo[9] = proto;
            pseudo[10..12].copy_from_slice(&(length as u16).to_be_bytes());
            ones_complement_sum(&pseudo, segment_sum)
        }
        IpHeader::V6(h) => {
            let mut pseudo = [0u8; 40];
            pseudo[0..16].copy_from_slice(&h.src.octets());
            pseudo[16..32].copy_from_slice(&h.dst.octets());
            pseudo[32..36].copy_from_slice(&length.to_be_bytes());
            pseudo[39] = proto;
            ones_complement_sum(&pseudo, segment_sum)
        }
    }
}

/// Sums pseudo-header + TCP header (checksum field replaced by
/// `checksum_field`) + payload, without materializing the header bytes.
fn tcp_sum(ip: &IpHeader, tcp: &TcpHeader, payload: &[u8], checksum_field: u16) -> u16 {
    let mut s = Summer::default();
    s.push(&tcp.src_port.to_be_bytes());
    s.push(&tcp.dst_port.to_be_bytes());
    s.push(&tcp.seq.to_be_bytes());
    s.push(&tcp.ack.to_be_bytes());
    let ns = u8::from(tcp.flags.contains(TcpFlags::NS));
    s.push(&[(tcp.data_offset << 4) | ns, (tcp.flags.0 & 0xff) as u8]);
    s.push(&tcp.window.to_be_bytes());
    s.push(&checksum_field.to_be_bytes());
    s.push(&tcp.urgent.to_be_bytes());
    let mut opt_len = 0usize;
    crate::wire::emit_tcp_options(&tcp.options, &mut |b: &[u8]| {
        opt_len += b.len();
        s.push(b);
    });
    s.push(payload);
    // Pseudo-header TCP length: derived from the actual structure, which —
    // because the parser slices the payload by the IP datagram length —
    // equals the `total_length`-derived value for any packet whose length
    // fields are honest (link-layer trailer padding never reaches here).
    let tcp_len = (20 + opt_len + payload.len()) as u32;
    finalize(pseudo_header_sum(
        ip,
        crate::ipv4::PROTO_TCP,
        tcp_len,
        s.finish(),
    ))
}

/// Sums pseudo-header + UDP header (checksum field replaced by
/// `checksum_field`) + payload. Per RFC 768 the pseudo-header length is the
/// UDP `length` **field** — so a lying length changes the checksum, which
/// is exactly the coupling the UDP length/checksum attack family plays
/// with.
fn udp_sum(ip: &IpHeader, udp: &UdpHeader, payload: &[u8], checksum_field: u16) -> u16 {
    let mut s = Summer::default();
    s.push(&udp.src_port.to_be_bytes());
    s.push(&udp.dst_port.to_be_bytes());
    s.push(&udp.length.to_be_bytes());
    s.push(&checksum_field.to_be_bytes());
    s.push(payload);
    finalize(pseudo_header_sum(
        ip,
        crate::ipv4::PROTO_UDP,
        u32::from(udp.length),
        s.finish(),
    ))
}

/// IPv4 header checksum over the serialized header with the checksum field
/// taken from `header.checksum` (set it to zero before computing).
pub fn ipv4_checksum(header: &Ipv4Header) -> u16 {
    ipv4_sum(header, header.checksum)
}

/// [`ipv4_checksum`] with the stored checksum field treated as zero — the
/// validation path, which would otherwise have to clone the header to zero
/// the field.
pub(crate) fn ipv4_checksum_ignoring_stored(header: &Ipv4Header) -> u16 {
    ipv4_sum(header, 0)
}

/// Transport checksum over the pseudo-header (v4 or v6), the serialized
/// transport header (with the stored checksum field; set it to zero before
/// computing) and the payload.
pub fn transport_checksum(ip: &IpHeader, transport: &Transport, payload: &[u8]) -> u16 {
    match transport {
        Transport::Tcp(t) => tcp_sum(ip, t, payload, t.checksum),
        Transport::Udp(u) => udp_sum(ip, u, payload, u.checksum),
    }
}

/// [`transport_checksum`] with the stored checksum field treated as zero —
/// the validation path, which would otherwise have to clone the header
/// (and its options) to zero the field.
pub(crate) fn transport_checksum_ignoring_stored(
    ip: &IpHeader,
    transport: &Transport,
    payload: &[u8],
) -> u16 {
    match transport {
        Transport::Tcp(t) => tcp_sum(ip, t, payload, 0),
        Transport::Udp(u) => udp_sum(ip, u, payload, 0),
    }
}

/// TCP checksum for explicitly v4/TCP headers (legacy-shaped helper used
/// by code that crafts raw segments).
pub fn tcp_checksum(ip: &Ipv4Header, tcp: &TcpHeader, payload: &[u8]) -> u16 {
    tcp_sum(&IpHeader::V4(ip.clone()), tcp, payload, tcp.checksum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn rfc1071_example() {
        // Example adapted from RFC 1071 §3: sum of 0001 f203 f4f5 f6f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let sum = ones_complement_sum(&data, 0);
        assert_eq!(sum, 0x2ddf0);
        assert_eq!(finalize(sum), !0xddf2u16);
    }

    #[test]
    fn odd_length_padding() {
        let even = ones_complement_sum(&[0xab, 0x00], 0);
        let odd = ones_complement_sum(&[0xab], 0);
        assert_eq!(even, odd);
    }

    #[test]
    fn known_ipv4_header_checksum() {
        // Classic worked example (Wikipedia): 4500 0073 0000 4000 4011 b861
        // c0a8 0001 c0a8 00c7 has checksum 0xb861.
        let mut h = Ipv4Header::new(
            Ipv4Addr::new(192, 168, 0, 1),
            Ipv4Addr::new(192, 168, 0, 199),
            64,
        );
        h.total_length = 0x73;
        h.flags = 0b010;
        h.protocol = 17; // UDP in the worked example
        h.checksum = 0;
        assert_eq!(ipv4_checksum(&h), 0xb861);
    }

    #[test]
    fn checksum_of_header_including_its_checksum_is_zero_sum() {
        let mut h = Ipv4Header::new(Ipv4Addr::new(10, 1, 1, 1), Ipv4Addr::new(10, 2, 2, 2), 61);
        h.total_length = 40;
        h.checksum = 0;
        h.checksum = ipv4_checksum(&h);
        // Re-summing with the checksum in place must yield 0xffff before
        // complement, i.e. finalize == 0.
        let bytes = crate::wire::serialize_ipv4(&h);
        assert_eq!(finalize(ones_complement_sum(&bytes, 0)), 0);
    }
}
