//! Wire-format serialization and lenient parsing for IPv4/IPv6 × TCP/UDP.
//!
//! Serialization writes stored field values verbatim — including inconsistent
//! lengths, offsets, extension chains and checksums — because the attack
//! simulator must emit ill-formed packets. Parsing never panics on hostile
//! input: length fields are clamped to the actual buffer, trailer padding
//! beyond the IP datagram length is excluded from the payload (but kept in
//! [`Packet::trailer`] so re-serialization reproduces the captured bytes
//! exactly), and structurally unreadable options are preserved as raw
//! bytes. See the crate-level docs for the full dispatch and lenient-parse
//! contract.

use crate::ipv4::{FLAG_MF, PROTO_TCP, PROTO_UDP};
use crate::ipv6::{is_walkable_extension, Ipv6ExtHeader, IPV6_HEADER_LEN};
use crate::{
    IpHeader, Ipv4Header, Ipv6Header, Packet, TcpFlags, TcpHeader, TcpOption, Transport, UdpHeader,
};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Errors returned by the packet parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Buffer shorter than the fixed IP header (20 bytes v4, 40 bytes v6).
    TruncatedIpHeader,
    /// Buffer shorter than the 20-byte fixed TCP header.
    TruncatedTcpHeader,
    /// Buffer shorter than the 8-byte UDP header.
    TruncatedUdpHeader,
    /// Upper-layer protocol is neither TCP nor UDP.
    UnsupportedProtocol(u8),
    /// An IPv4 fragment (non-zero offset, or MF set): not decodable as a
    /// standalone transport packet — route the raw bytes to a
    /// [`crate::frag::Reassembler`]. `offset` is in bytes.
    Fragment { offset: u16, more: bool },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::TruncatedIpHeader => write!(f, "buffer too short for IP header"),
            ParseError::TruncatedTcpHeader => write!(f, "buffer too short for TCP header"),
            ParseError::TruncatedUdpHeader => write!(f, "buffer too short for UDP header"),
            ParseError::UnsupportedProtocol(p) => {
                write!(f, "IP protocol {p} is neither TCP nor UDP")
            }
            ParseError::Fragment { offset, more } => {
                write!(
                    f,
                    "IPv4 fragment (offset {offset}, more={more}) awaits reassembly"
                )
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes an IPv4 header (fixed part + padded options) to bytes.
pub fn serialize_ipv4(h: &Ipv4Header) -> Vec<u8> {
    let mut out = Vec::with_capacity(h.header_len_bytes());
    out.push((h.version << 4) | (h.ihl & 0x0f));
    out.push(h.tos);
    out.extend_from_slice(&h.total_length.to_be_bytes());
    out.extend_from_slice(&h.identification.to_be_bytes());
    let frag = (u16::from(h.flags & 0x7) << 13) | (h.fragment_offset & 0x1fff);
    out.extend_from_slice(&frag.to_be_bytes());
    out.push(h.ttl);
    out.push(h.protocol);
    out.extend_from_slice(&h.checksum.to_be_bytes());
    out.extend_from_slice(&h.src.octets());
    out.extend_from_slice(&h.dst.octets());
    out.extend_from_slice(&h.options);
    while out.len() % 4 != 0 {
        out.push(0);
    }
    out
}

/// Serializes an IPv6 header (fixed part + extension chain, verbatim).
pub fn serialize_ipv6(h: &Ipv6Header) -> Vec<u8> {
    let mut out = Vec::with_capacity(h.header_len_bytes());
    out.push((h.version << 4) | ((h.traffic_class >> 4) & 0x0f));
    out.push(((h.traffic_class & 0x0f) << 4) | ((h.flow_label >> 16) as u8 & 0x0f));
    out.extend_from_slice(&((h.flow_label & 0xffff) as u16).to_be_bytes());
    out.extend_from_slice(&h.payload_length.to_be_bytes());
    out.push(h.next_header);
    out.push(h.hop_limit);
    out.extend_from_slice(&h.src.octets());
    out.extend_from_slice(&h.dst.octets());
    for ext in &h.ext {
        out.push(ext.next_header);
        out.push(ext.hdr_ext_len);
        out.extend_from_slice(&ext.data);
    }
    out
}

/// Streams the serialized TCP options — including end-of-list padding to
/// a 4-byte boundary — into `sink` as a series of byte chunks, without
/// allocating. This is the single source of truth for the option wire
/// format: [`serialize_tcp_options`] collects these chunks into a `Vec`,
/// and the checksum routines sum them directly so the per-packet
/// validation path stays allocation-free.
pub(crate) fn emit_tcp_options(options: &[TcpOption], sink: &mut impl FnMut(&[u8])) {
    let mut len = 0usize;
    for opt in options {
        match opt {
            TcpOption::Mss(v) => {
                let mut b = [2, 4, 0, 0];
                b[2..4].copy_from_slice(&v.to_be_bytes());
                sink(&b);
                len += 4;
            }
            TcpOption::WindowScale(v) => {
                sink(&[3, 3, *v]);
                len += 3;
            }
            TcpOption::SackPermitted => {
                sink(&[4, 2]);
                len += 2;
            }
            TcpOption::Sack(blocks) => {
                sink(&[5, (2 + blocks.len() * 8) as u8]);
                for (l, r) in blocks {
                    sink(&l.to_be_bytes());
                    sink(&r.to_be_bytes());
                }
                len += 2 + blocks.len() * 8;
            }
            TcpOption::Timestamps { tsval, tsecr } => {
                let mut b = [0u8; 10];
                b[0] = 8;
                b[1] = 10;
                b[2..6].copy_from_slice(&tsval.to_be_bytes());
                b[6..10].copy_from_slice(&tsecr.to_be_bytes());
                sink(&b);
                len += 10;
            }
            TcpOption::Md5(digest) => {
                sink(&[19, 18]);
                sink(digest);
                len += 18;
            }
            TcpOption::UserTimeout(v) => {
                let mut b = [28, 4, 0, 0];
                b[2..4].copy_from_slice(&v.to_be_bytes());
                sink(&b);
                len += 4;
            }
            TcpOption::Unknown { kind, data } => {
                sink(&[*kind, (2 + data.len()) as u8]);
                sink(data);
                len += 2 + data.len();
            }
            TcpOption::Nop => {
                sink(&[1]);
                len += 1;
            }
            TcpOption::Raw(bytes) => {
                sink(bytes);
                len += bytes.len();
            }
        }
    }
    const PAD: [u8; 3] = [0; 3]; // End-of-list padding
    sink(&PAD[..(4 - len % 4) % 4]);
}

/// Serializes TCP options with end-of-list padding to a 4-byte boundary.
pub fn serialize_tcp_options(options: &[TcpOption]) -> Vec<u8> {
    let mut out = Vec::new();
    emit_tcp_options(options, &mut |b| out.extend_from_slice(b));
    out
}

/// Serializes a TCP header (fixed part + padded options) to bytes.
pub fn serialize_tcp(h: &TcpHeader) -> Vec<u8> {
    let mut out = Vec::with_capacity(h.header_len_bytes());
    out.extend_from_slice(&h.src_port.to_be_bytes());
    out.extend_from_slice(&h.dst_port.to_be_bytes());
    out.extend_from_slice(&h.seq.to_be_bytes());
    out.extend_from_slice(&h.ack.to_be_bytes());
    // Data offset (4 bits) | reserved (3 bits) | NS bit.
    let ns = u8::from(h.flags.contains(TcpFlags::NS));
    out.push((h.data_offset << 4) | ns);
    out.push((h.flags.0 & 0xff) as u8);
    out.extend_from_slice(&h.window.to_be_bytes());
    out.extend_from_slice(&h.checksum.to_be_bytes());
    out.extend_from_slice(&h.urgent.to_be_bytes());
    emit_tcp_options(&h.options, &mut |b| out.extend_from_slice(b));
    out
}

/// Serializes a UDP header to bytes.
pub fn serialize_udp(h: &UdpHeader) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    out.extend_from_slice(&h.src_port.to_be_bytes());
    out.extend_from_slice(&h.dst_port.to_be_bytes());
    out.extend_from_slice(&h.length.to_be_bytes());
    out.extend_from_slice(&h.checksum.to_be_bytes());
    out
}

/// Serializes a whole packet to raw IP bytes.
pub fn serialize_packet(p: &Packet) -> Vec<u8> {
    let mut out = match &p.ip {
        IpHeader::V4(h) => serialize_ipv4(h),
        IpHeader::V6(h) => serialize_ipv6(h),
    };
    match &p.transport {
        Transport::Tcp(t) => out.extend_from_slice(&serialize_tcp(t)),
        Transport::Udp(u) => out.extend_from_slice(&serialize_udp(u)),
    }
    out.extend_from_slice(&p.payload);
    out.extend_from_slice(&p.trailer);
    out
}

/// Parses TCP option bytes leniently; malformed trailing bytes become
/// [`TcpOption::Unknown`] entries so no information is lost.
pub fn parse_tcp_options(mut data: &[u8]) -> Vec<TcpOption> {
    let orig_len = data.len();
    let mut opts = Vec::new();
    while !data.is_empty() {
        let kind = data[0];
        match kind {
            0 => {
                // End of list. The serializer re-pads with zeros to the next
                // 4-byte boundary; if the remaining bytes are exactly that
                // padding, drop them, otherwise (nonzero garbage after EOL,
                // or an over-long zero run under a corrupted data offset)
                // keep the tail verbatim so the wire image round-trips.
                let consumed = orig_len - data.len();
                let pad = (4 - consumed % 4) % 4;
                if data.len() != pad || data.iter().any(|&b| b != 0) {
                    opts.push(TcpOption::Raw(data.to_vec()));
                }
                break;
            }
            1 => {
                // NOPs are kept so the serializer reproduces the original
                // layout (and so the EOL padding arithmetic below counts
                // only bytes the serializer will actually emit).
                opts.push(TcpOption::Nop);
                data = &data[1..];
            }
            _ => {
                if data.len() < 2 {
                    opts.push(TcpOption::Raw(data.to_vec()));
                    break;
                }
                let len = data[1] as usize;
                if len < 2 || len > data.len() {
                    // Malformed length: keep the remainder (including the
                    // lying length byte) verbatim so serialization
                    // reproduces the exact wire image.
                    opts.push(TcpOption::Raw(data.to_vec()));
                    break;
                }
                let body = &data[2..len];
                let opt = match (kind, body.len()) {
                    (2, 2) => TcpOption::Mss(u16::from_be_bytes([body[0], body[1]])),
                    (3, 1) => TcpOption::WindowScale(body[0]),
                    (4, 0) => TcpOption::SackPermitted,
                    (5, n) if n % 8 == 0 => {
                        let blocks = body
                            .chunks_exact(8)
                            .map(|c| {
                                (
                                    u32::from_be_bytes([c[0], c[1], c[2], c[3]]),
                                    u32::from_be_bytes([c[4], c[5], c[6], c[7]]),
                                )
                            })
                            .collect();
                        TcpOption::Sack(blocks)
                    }
                    (8, 8) => TcpOption::Timestamps {
                        tsval: u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                        tsecr: u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                    },
                    (19, 16) => {
                        let mut digest = [0u8; 16];
                        digest.copy_from_slice(body);
                        TcpOption::Md5(digest)
                    }
                    (28, 2) => TcpOption::UserTimeout(u16::from_be_bytes([body[0], body[1]])),
                    _ => TcpOption::Unknown {
                        kind,
                        data: body.to_vec(),
                    },
                };
                opts.push(opt);
                data = &data[len..];
            }
        }
    }
    opts
}

/// Parses the transport header + payload from the IP-datagram bytes that
/// follow the network header. `data` is already clamped to the datagram
/// end, so trailer padding never reaches the payload.
fn parse_transport(proto: u8, data: &[u8]) -> Result<(Transport, Vec<u8>), ParseError> {
    match proto {
        PROTO_TCP => {
            if data.len() < 20 {
                return Err(ParseError::TruncatedTcpHeader);
            }
            let data_offset = data[12] >> 4;
            let tcp_hdr_len = (data_offset as usize * 4).clamp(20, data.len());
            let ns = data[12] & 0x01;
            let flags = TcpFlags(u16::from(data[13]) | (u16::from(ns) << 8));
            let tcp = TcpHeader {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
                ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
                data_offset,
                flags,
                window: u16::from_be_bytes([data[14], data[15]]),
                checksum: u16::from_be_bytes([data[16], data[17]]),
                urgent: u16::from_be_bytes([data[18], data[19]]),
                options: parse_tcp_options(&data[20..tcp_hdr_len]),
            };
            Ok((Transport::Tcp(tcp), data[tcp_hdr_len..].to_vec()))
        }
        PROTO_UDP => {
            if data.len() < 8 {
                return Err(ParseError::TruncatedUdpHeader);
            }
            let udp = UdpHeader {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                length: u16::from_be_bytes([data[4], data[5]]),
                checksum: u16::from_be_bytes([data[6], data[7]]),
            };
            Ok((Transport::Udp(udp), data[8..].to_vec()))
        }
        other => Err(ParseError::UnsupportedProtocol(other)),
    }
}

/// Effective end of the IP datagram inside the captured buffer: the claimed
/// datagram length when plausible (at least `min_len`, at most the capture),
/// else the whole buffer. Excludes link-layer trailer padding — the bytes an
/// Ethernet driver appends to reach the 60-byte frame minimum — from the
/// transport payload, while still tolerating deliberately corrupt length
/// fields (which fall back to the captured size, the pre-fix behavior).
fn effective_datagram_end(claimed: usize, min_len: usize, captured: usize) -> usize {
    if claimed >= min_len && claimed <= captured {
        claimed
    } else {
        captured
    }
}

fn parse_v4(timestamp: f64, data: &[u8]) -> Result<Packet, ParseError> {
    if data.len() < 20 {
        return Err(ParseError::TruncatedIpHeader);
    }
    let version = data[0] >> 4;
    let ihl = data[0] & 0x0f;
    let ip_hdr_len = (ihl as usize * 4).clamp(20, data.len());
    let frag = u16::from_be_bytes([data[6], data[7]]);
    let flags = (frag >> 13) as u8;
    let fragment_offset = frag & 0x1fff;
    // A fragment's bytes past the IP header are mid-datagram content, not a
    // transport header; decoding them would fabricate phantom flows.
    if fragment_offset > 0 || flags & FLAG_MF != 0 {
        return Err(ParseError::Fragment {
            offset: fragment_offset * 8,
            more: flags & FLAG_MF != 0,
        });
    }
    let protocol = data[9];
    let total_length = u16::from_be_bytes([data[2], data[3]]);
    let ip = Ipv4Header {
        version,
        ihl,
        tos: data[1],
        total_length,
        identification: u16::from_be_bytes([data[4], data[5]]),
        flags,
        fragment_offset,
        ttl: data[8],
        protocol,
        checksum: u16::from_be_bytes([data[10], data[11]]),
        src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
        dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
        options: data[20..ip_hdr_len].to_vec(),
    };

    let min_transport = if protocol == PROTO_UDP { 8 } else { 20 };
    let end = effective_datagram_end(
        total_length as usize,
        ip_hdr_len + min_transport,
        data.len(),
    );
    let (transport, payload) = parse_transport(protocol, &data[ip_hdr_len..end])?;
    Ok(Packet {
        timestamp,
        ip: IpHeader::V4(ip),
        transport,
        payload,
        reassembly: None,
        trailer: data[end..].to_vec(),
    })
}

fn parse_v6(timestamp: f64, data: &[u8]) -> Result<Packet, ParseError> {
    if data.len() < IPV6_HEADER_LEN {
        return Err(ParseError::TruncatedIpHeader);
    }
    let version = data[0] >> 4;
    let traffic_class = ((data[0] & 0x0f) << 4) | (data[1] >> 4);
    let flow_label =
        (u32::from(data[1] & 0x0f) << 16) | u32::from(u16::from_be_bytes([data[2], data[3]]));
    let payload_length = u16::from_be_bytes([data[4], data[5]]);
    let next_header = data[6];
    let hop_limit = data[7];
    let src = Ipv6Addr::from(<[u8; 16]>::try_from(&data[8..24]).expect("16 bytes"));
    let dst = Ipv6Addr::from(<[u8; 16]>::try_from(&data[24..40]).expect("16 bytes"));

    // Walk the options-shaped extension chain. Each header's claimed size
    // is clamped to the remaining buffer; a clamped (truncated) header ends
    // the chain with its bytes preserved verbatim.
    let mut ext = Vec::new();
    let mut proto = next_header;
    let mut off = IPV6_HEADER_LEN;
    while is_walkable_extension(proto) && data.len() - off >= 2 {
        let ext_next = data[off];
        let hdr_ext_len = data[off + 1];
        let claimed = 8 * (hdr_ext_len as usize + 1);
        let take = claimed.min(data.len() - off);
        ext.push(Ipv6ExtHeader {
            next_header: ext_next,
            hdr_ext_len,
            data: data[off + 2..off + take].to_vec(),
        });
        off += take;
        proto = ext_next;
        if take < claimed {
            break;
        }
    }

    let ip = Ipv6Header {
        version,
        traffic_class,
        flow_label,
        payload_length,
        next_header,
        hop_limit,
        src,
        dst,
        ext,
    };

    let min_transport = if proto == PROTO_UDP { 8 } else { 20 };
    let end = effective_datagram_end(
        IPV6_HEADER_LEN + payload_length as usize,
        off + min_transport,
        data.len(),
    );
    let transport_bytes = if off <= end { &data[off..end] } else { &[][..] };
    let (transport, payload) = parse_transport(proto, transport_bytes)?;
    Ok(Packet {
        timestamp,
        ip: IpHeader::V6(ip),
        transport,
        payload,
        reassembly: None,
        trailer: data[end.max(off)..].to_vec(),
    })
}

/// Parses a raw IP packet leniently, dispatching on the version nibble:
/// `6` takes the IPv6 path, everything else the IPv4 path with the version
/// stored verbatim (so deliberately corrupt v4 versions still parse as the
/// corrupt packets they are). See the crate docs for the full contract.
pub fn parse_packet(timestamp: f64, data: &[u8]) -> Result<Packet, ParseError> {
    if data.is_empty() {
        return Err(ParseError::TruncatedIpHeader);
    }
    match data[0] >> 4 {
        6 => parse_v6(timestamp, data),
        _ => parse_v4(timestamp, data),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn well_formed() -> Packet {
        let ip = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 64);
        let mut tcp = TcpHeader::new(4321, 443, 0xdeadbeef, 0x01020304);
        tcp.flags = TcpFlags::SYN;
        tcp.options = vec![
            TcpOption::Mss(1460),
            TcpOption::SackPermitted,
            TcpOption::Timestamps { tsval: 1, tsecr: 0 },
            TcpOption::WindowScale(7),
        ];
        Packet::new(0.0, ip, tcp, Vec::new())
    }

    fn well_formed_v6() -> Packet {
        let ip = Ipv6Header::new(
            Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1),
            Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2),
            64,
        );
        let mut tcp = TcpHeader::new(4321, 443, 0xdeadbeef, 0x01020304);
        tcp.flags = TcpFlags::ACK | TcpFlags::PSH;
        Packet::new_v6(0.1, ip, tcp, b"v6 payload".to_vec())
    }

    #[test]
    fn round_trip_well_formed() {
        let p = well_formed();
        let bytes = serialize_packet(&p);
        let q = parse_packet(0.0, &bytes).unwrap();
        assert_eq!(p.ip, q.ip);
        assert_eq!(p.tcp().src_port, q.tcp().src_port);
        assert_eq!(p.tcp().seq, q.tcp().seq);
        assert_eq!(p.tcp().flags, q.tcp().flags);
        assert_eq!(p.tcp().options, q.tcp().options);
        assert_eq!(p.payload, q.payload);
        assert!(q.ip_checksum_valid());
        assert!(q.transport_checksum_valid());
    }

    #[test]
    fn protocol_round_trip_v6_tcp() {
        let p = well_formed_v6();
        let bytes = serialize_packet(&p);
        assert_eq!(bytes.len(), 40 + 20 + 10);
        let q = parse_packet(0.1, &bytes).unwrap();
        assert_eq!(p, q);
        assert!(q.transport_checksum_valid());
    }

    #[test]
    fn protocol_round_trip_v6_ext_chain() {
        let mut ip = Ipv6Header::new(
            Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 1),
            Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 2),
            64,
        );
        ip.next_header = crate::ipv6::EXT_HOP_BY_HOP;
        ip.ext = vec![
            Ipv6ExtHeader::well_formed(crate::ipv6::EXT_DEST_OPTS, 0, vec![1, 4]),
            Ipv6ExtHeader::well_formed(0xff, 1, vec![1, 12]),
        ];
        let tcp = TcpHeader::new(1000, 2000, 1, 2);
        let p = Packet::new_v6(0.0, ip, tcp, b"x".to_vec());
        // Packet::new_v6 rewires the chain tail to TCP.
        assert_eq!(p.ip.protocol(), PROTO_TCP);
        let q = parse_packet(0.0, &serialize_packet(&p)).unwrap();
        assert_eq!(p, q);
        assert_eq!(q.ip.v6().unwrap().ext.len(), 2);
        assert!(q.transport_checksum_valid());
    }

    #[test]
    fn protocol_round_trip_udp_v4() {
        let ip = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 64);
        let p = Packet::new_udp(0.0, ip, UdpHeader::new(40000, 53), b"dns?".to_vec());
        let bytes = serialize_packet(&p);
        assert_eq!(bytes.len(), 20 + 8 + 4);
        let q = parse_packet(0.0, &bytes).unwrap();
        assert_eq!(p, q);
        assert!(q.ip_checksum_valid());
        assert!(q.transport_checksum_valid());
    }

    #[test]
    fn ns_flag_round_trips() {
        let mut p = well_formed();
        p.tcp_mut().flags |= TcpFlags::NS;
        p.fill_checksums();
        let q = parse_packet(0.0, &serialize_packet(&p)).unwrap();
        assert!(q.tcp().flags.contains(TcpFlags::NS));
    }

    #[test]
    fn corrupt_total_length_survives_round_trip() {
        let mut p = well_formed();
        p.ipv4_mut().total_length = 9; // nonsense, deliberately
        let bytes = serialize_packet(&p);
        let q = parse_packet(0.0, &bytes).unwrap();
        assert_eq!(q.ipv4().total_length, 9);
        assert!(!q.ip_checksum_valid()); // checksum was for the old value
    }

    #[test]
    fn corrupt_data_offset_is_clamped_not_panicking() {
        let mut p = well_formed();
        p.tcp_mut().data_offset = 15; // claims 60-byte header, actual is 36
        let bytes = serialize_packet(&p);
        let q = parse_packet(0.0, &bytes).unwrap();
        assert_eq!(q.tcp().data_offset, 15);
    }

    /// Regression (PR 9): an Ethernet driver pads short frames to the
    /// 60-byte minimum; the trailer bytes are link-layer junk beyond the IP
    /// datagram and must not be decoded as TCP payload — they corrupted
    /// payload-length features and broke checksum validation.
    #[test]
    fn protocol_trailer_padding_excluded_from_payload() {
        let ip = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 64);
        let mut tcp = TcpHeader::new(4321, 443, 7, 9);
        tcp.flags = TcpFlags::ACK | TcpFlags::PSH;
        let p = Packet::new(0.0, ip, tcp, b"ok".to_vec());
        let mut bytes = serialize_packet(&p);
        assert_eq!(bytes.len(), 42);
        bytes.resize(60, 0xaa); // Ethernet-minimum padding, nonzero junk
        let q = parse_packet(0.0, &bytes).unwrap();
        assert_eq!(q.payload, b"ok".to_vec(), "padding must not become payload");
        assert!(
            q.transport_checksum_valid(),
            "padding must not break checksums"
        );
        assert_eq!(q.wire_len(), 42);
        // The junk lands in the trailer, so the captured frame re-serializes
        // bit-exactly (capture fidelity) while staying out of the payload.
        assert_eq!(q.trailer, vec![0xaa; 18]);
        assert_eq!(serialize_packet(&q), bytes);
    }

    /// Regression (PR 9): a non-initial fragment's bytes were decoded as a
    /// TCP header (garbage ports/seq — phantom flows). Fragments now route
    /// to the reassembler via a typed error.
    #[test]
    fn protocol_fragments_not_parsed_as_transport() {
        let ip = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 64);
        let tcp = TcpHeader::new(4321, 443, 7, 9);
        let p = Packet::new(0.0, ip, tcp, vec![0x61; 64]);
        let whole = serialize_packet(&p);

        // Non-initial fragment: offset 3 (24 bytes), MF clear.
        let mut tail = whole.clone();
        let frag = 3u16; // flags clear, offset 3
        tail[6..8].copy_from_slice(&frag.to_be_bytes());
        assert_eq!(
            parse_packet(0.0, &tail),
            Err(ParseError::Fragment {
                offset: 24,
                more: false
            })
        );

        // Initial fragment with MF set: also pending reassembly.
        let mut head = whole;
        let frag = u16::from(FLAG_MF) << 13; // MF set, offset 0
        head[6..8].copy_from_slice(&frag.to_be_bytes());
        assert_eq!(
            parse_packet(0.0, &head),
            Err(ParseError::Fragment {
                offset: 0,
                more: true
            })
        );
    }

    #[test]
    fn short_buffers_error() {
        assert_eq!(
            parse_packet(0.0, &[0; 10]),
            Err(ParseError::TruncatedIpHeader)
        );
        let mut buf = vec![0x45u8; 25];
        buf[9] = 6;
        buf[2..4].copy_from_slice(&25u16.to_be_bytes());
        buf[6..8].copy_from_slice(&0u16.to_be_bytes());
        assert_eq!(parse_packet(0.0, &buf), Err(ParseError::TruncatedTcpHeader));
    }

    #[test]
    fn unsupported_protocol_rejected() {
        let mut buf = vec![0u8; 40];
        buf[0] = 0x45;
        buf[9] = 1; // ICMP
        assert_eq!(
            parse_packet(0.0, &buf),
            Err(ParseError::UnsupportedProtocol(1))
        );
    }

    #[test]
    fn protocol_udp_now_parses() {
        let mut buf = vec![0u8; 40];
        buf[0] = 0x45;
        buf[9] = 17;
        buf[2..4].copy_from_slice(&40u16.to_be_bytes());
        let p = parse_packet(0.0, &buf).expect("UDP parses since PR 9");
        assert!(p.is_udp());
        assert_eq!(p.payload.len(), 40 - 20 - 8);
    }

    #[test]
    fn malformed_option_length_preserved_verbatim() {
        let bytes = [2, 60, 5, 0]; // MSS with absurd length
        let opts = parse_tcp_options(&bytes);
        assert_eq!(opts.len(), 1);
        assert_eq!(opts[0], TcpOption::Raw(bytes.to_vec()));
        // The whole point of `Raw`: the wire image survives re-serialization.
        assert_eq!(serialize_tcp_options(&opts), bytes.to_vec());
    }

    #[test]
    fn nop_and_eol_handling() {
        let bytes = [1, 1, 2, 4, 0x05, 0xb4, 0, 0];
        let opts = parse_tcp_options(&bytes);
        assert_eq!(
            opts,
            vec![TcpOption::Nop, TcpOption::Nop, TcpOption::Mss(1460)]
        );
        // NOPs and trailing padding survive re-serialization byte-exactly.
        assert_eq!(serialize_tcp_options(&opts), bytes.to_vec());
    }

    #[test]
    fn md5_option_round_trip() {
        let bytes = serialize_tcp_options(&[TcpOption::Md5([0xaa; 16])]);
        assert_eq!(bytes.len(), 20); // 18 padded to 20
        let opts = parse_tcp_options(&bytes);
        assert_eq!(opts, vec![TcpOption::Md5([0xaa; 16])]);
    }

    /// A lying v6 extension length is clamped to the buffer but survives
    /// re-serialization byte-exactly (lenient-parse contract).
    #[test]
    fn protocol_v6_overrun_ext_len_preserved() {
        let p = {
            let mut ip = Ipv6Header::new(
                Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 1),
                Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 2),
                64,
            );
            ip.next_header = crate::ipv6::EXT_DEST_OPTS;
            ip.ext = vec![Ipv6ExtHeader::well_formed(PROTO_TCP, 0, vec![])];
            Packet::new_v6(0.0, ip, TcpHeader::new(1, 2, 3, 4), Vec::new())
        };
        let mut bytes = serialize_packet(&p);
        bytes[41] = 200; // hdr_ext_len now claims 1608 bytes
                         // The chain swallows the rest of the buffer; no transport remains.
        let err = parse_packet(0.0, &bytes).unwrap_err();
        assert!(matches!(
            err,
            ParseError::TruncatedTcpHeader | ParseError::UnsupportedProtocol(_)
        ));
    }
}
