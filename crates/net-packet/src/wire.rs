//! Wire-format serialization and lenient parsing.
//!
//! Serialization writes stored field values verbatim — including inconsistent
//! lengths, offsets and checksums — because the attack simulator must emit
//! ill-formed packets. Parsing never panics on hostile input: length fields
//! are clamped to the actual buffer, and structurally unreadable options are
//! preserved as raw bytes.

use crate::{Ipv4Header, Packet, TcpFlags, TcpHeader, TcpOption};
use std::net::Ipv4Addr;

/// Errors returned by the packet parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Buffer shorter than the 20-byte fixed IPv4 header.
    TruncatedIpHeader,
    /// Buffer shorter than the 20-byte fixed TCP header.
    TruncatedTcpHeader,
    /// IP protocol field is not TCP.
    NotTcp(u8),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::TruncatedIpHeader => write!(f, "buffer too short for IPv4 header"),
            ParseError::TruncatedTcpHeader => write!(f, "buffer too short for TCP header"),
            ParseError::NotTcp(p) => write!(f, "IP protocol {p} is not TCP"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes an IPv4 header (fixed part + padded options) to bytes.
pub fn serialize_ipv4(h: &Ipv4Header) -> Vec<u8> {
    let mut out = Vec::with_capacity(h.header_len_bytes());
    out.push((h.version << 4) | (h.ihl & 0x0f));
    out.push(h.tos);
    out.extend_from_slice(&h.total_length.to_be_bytes());
    out.extend_from_slice(&h.identification.to_be_bytes());
    let frag = (u16::from(h.flags & 0x7) << 13) | (h.fragment_offset & 0x1fff);
    out.extend_from_slice(&frag.to_be_bytes());
    out.push(h.ttl);
    out.push(h.protocol);
    out.extend_from_slice(&h.checksum.to_be_bytes());
    out.extend_from_slice(&h.src.octets());
    out.extend_from_slice(&h.dst.octets());
    out.extend_from_slice(&h.options);
    while out.len() % 4 != 0 {
        out.push(0);
    }
    out
}

/// Streams the serialized TCP options — including end-of-list padding to
/// a 4-byte boundary — into `sink` as a series of byte chunks, without
/// allocating. This is the single source of truth for the option wire
/// format: [`serialize_tcp_options`] collects these chunks into a `Vec`,
/// and the checksum routines sum them directly so the per-packet
/// validation path stays allocation-free.
pub(crate) fn emit_tcp_options(options: &[TcpOption], sink: &mut impl FnMut(&[u8])) {
    let mut len = 0usize;
    for opt in options {
        match opt {
            TcpOption::Mss(v) => {
                let mut b = [2, 4, 0, 0];
                b[2..4].copy_from_slice(&v.to_be_bytes());
                sink(&b);
                len += 4;
            }
            TcpOption::WindowScale(v) => {
                sink(&[3, 3, *v]);
                len += 3;
            }
            TcpOption::SackPermitted => {
                sink(&[4, 2]);
                len += 2;
            }
            TcpOption::Sack(blocks) => {
                sink(&[5, (2 + blocks.len() * 8) as u8]);
                for (l, r) in blocks {
                    sink(&l.to_be_bytes());
                    sink(&r.to_be_bytes());
                }
                len += 2 + blocks.len() * 8;
            }
            TcpOption::Timestamps { tsval, tsecr } => {
                let mut b = [0u8; 10];
                b[0] = 8;
                b[1] = 10;
                b[2..6].copy_from_slice(&tsval.to_be_bytes());
                b[6..10].copy_from_slice(&tsecr.to_be_bytes());
                sink(&b);
                len += 10;
            }
            TcpOption::Md5(digest) => {
                sink(&[19, 18]);
                sink(digest);
                len += 18;
            }
            TcpOption::UserTimeout(v) => {
                let mut b = [28, 4, 0, 0];
                b[2..4].copy_from_slice(&v.to_be_bytes());
                sink(&b);
                len += 4;
            }
            TcpOption::Unknown { kind, data } => {
                sink(&[*kind, (2 + data.len()) as u8]);
                sink(data);
                len += 2 + data.len();
            }
            TcpOption::Nop => {
                sink(&[1]);
                len += 1;
            }
            TcpOption::Raw(bytes) => {
                sink(bytes);
                len += bytes.len();
            }
        }
    }
    const PAD: [u8; 3] = [0; 3]; // End-of-list padding
    sink(&PAD[..(4 - len % 4) % 4]);
}

/// Serializes TCP options with end-of-list padding to a 4-byte boundary.
pub fn serialize_tcp_options(options: &[TcpOption]) -> Vec<u8> {
    let mut out = Vec::new();
    emit_tcp_options(options, &mut |b| out.extend_from_slice(b));
    out
}

/// Serializes a TCP header (fixed part + padded options) to bytes.
pub fn serialize_tcp(h: &TcpHeader) -> Vec<u8> {
    let mut out = Vec::with_capacity(h.header_len_bytes());
    out.extend_from_slice(&h.src_port.to_be_bytes());
    out.extend_from_slice(&h.dst_port.to_be_bytes());
    out.extend_from_slice(&h.seq.to_be_bytes());
    out.extend_from_slice(&h.ack.to_be_bytes());
    // Data offset (4 bits) | reserved (3 bits) | NS bit.
    let ns = u8::from(h.flags.contains(TcpFlags::NS));
    out.push((h.data_offset << 4) | ns);
    out.push((h.flags.0 & 0xff) as u8);
    out.extend_from_slice(&h.window.to_be_bytes());
    out.extend_from_slice(&h.checksum.to_be_bytes());
    out.extend_from_slice(&h.urgent.to_be_bytes());
    emit_tcp_options(&h.options, &mut |b| out.extend_from_slice(b));
    out
}

/// Serializes a whole packet to raw IPv4 bytes.
pub fn serialize_packet(p: &Packet) -> Vec<u8> {
    let mut out = serialize_ipv4(&p.ip);
    out.extend_from_slice(&serialize_tcp(&p.tcp));
    out.extend_from_slice(&p.payload);
    out
}

/// Parses TCP option bytes leniently; malformed trailing bytes become
/// [`TcpOption::Unknown`] entries so no information is lost.
pub fn parse_tcp_options(mut data: &[u8]) -> Vec<TcpOption> {
    let orig_len = data.len();
    let mut opts = Vec::new();
    while !data.is_empty() {
        let kind = data[0];
        match kind {
            0 => {
                // End of list. The serializer re-pads with zeros to the next
                // 4-byte boundary; if the remaining bytes are exactly that
                // padding, drop them, otherwise (nonzero garbage after EOL,
                // or an over-long zero run under a corrupted data offset)
                // keep the tail verbatim so the wire image round-trips.
                let consumed = orig_len - data.len();
                let pad = (4 - consumed % 4) % 4;
                if data.len() != pad || data.iter().any(|&b| b != 0) {
                    opts.push(TcpOption::Raw(data.to_vec()));
                }
                break;
            }
            1 => {
                // NOPs are kept so the serializer reproduces the original
                // layout (and so the EOL padding arithmetic below counts
                // only bytes the serializer will actually emit).
                opts.push(TcpOption::Nop);
                data = &data[1..];
            }
            _ => {
                if data.len() < 2 {
                    opts.push(TcpOption::Raw(data.to_vec()));
                    break;
                }
                let len = data[1] as usize;
                if len < 2 || len > data.len() {
                    // Malformed length: keep the remainder (including the
                    // lying length byte) verbatim so serialization
                    // reproduces the exact wire image.
                    opts.push(TcpOption::Raw(data.to_vec()));
                    break;
                }
                let body = &data[2..len];
                let opt = match (kind, body.len()) {
                    (2, 2) => TcpOption::Mss(u16::from_be_bytes([body[0], body[1]])),
                    (3, 1) => TcpOption::WindowScale(body[0]),
                    (4, 0) => TcpOption::SackPermitted,
                    (5, n) if n % 8 == 0 => {
                        let blocks = body
                            .chunks_exact(8)
                            .map(|c| {
                                (
                                    u32::from_be_bytes([c[0], c[1], c[2], c[3]]),
                                    u32::from_be_bytes([c[4], c[5], c[6], c[7]]),
                                )
                            })
                            .collect();
                        TcpOption::Sack(blocks)
                    }
                    (8, 8) => TcpOption::Timestamps {
                        tsval: u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                        tsecr: u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                    },
                    (19, 16) => {
                        let mut digest = [0u8; 16];
                        digest.copy_from_slice(body);
                        TcpOption::Md5(digest)
                    }
                    (28, 2) => TcpOption::UserTimeout(u16::from_be_bytes([body[0], body[1]])),
                    _ => TcpOption::Unknown {
                        kind,
                        data: body.to_vec(),
                    },
                };
                opts.push(opt);
                data = &data[len..];
            }
        }
    }
    opts
}

/// Parses a raw IPv4+TCP packet leniently. The IP header length is taken
/// from the IHL field but clamped to the buffer; the TCP header length from
/// the data offset, also clamped. Everything after the TCP header is
/// payload.
pub fn parse_packet(timestamp: f64, data: &[u8]) -> Result<Packet, ParseError> {
    if data.len() < 20 {
        return Err(ParseError::TruncatedIpHeader);
    }
    let version = data[0] >> 4;
    let ihl = data[0] & 0x0f;
    let ip_hdr_len = (ihl as usize * 4).clamp(20, data.len());
    let frag = u16::from_be_bytes([data[6], data[7]]);
    let protocol = data[9];
    if protocol != crate::ipv4::PROTO_TCP {
        return Err(ParseError::NotTcp(protocol));
    }
    let ip = Ipv4Header {
        version,
        ihl,
        tos: data[1],
        total_length: u16::from_be_bytes([data[2], data[3]]),
        identification: u16::from_be_bytes([data[4], data[5]]),
        flags: (frag >> 13) as u8,
        fragment_offset: frag & 0x1fff,
        ttl: data[8],
        protocol,
        checksum: u16::from_be_bytes([data[10], data[11]]),
        src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
        dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
        options: data[20..ip_hdr_len].to_vec(),
    };

    let tcp_data = &data[ip_hdr_len..];
    if tcp_data.len() < 20 {
        return Err(ParseError::TruncatedTcpHeader);
    }
    let data_offset = tcp_data[12] >> 4;
    let tcp_hdr_len = (data_offset as usize * 4).clamp(20, tcp_data.len());
    let ns = tcp_data[12] & 0x01;
    let flags = TcpFlags(u16::from(tcp_data[13]) | (u16::from(ns) << 8));
    let tcp = TcpHeader {
        src_port: u16::from_be_bytes([tcp_data[0], tcp_data[1]]),
        dst_port: u16::from_be_bytes([tcp_data[2], tcp_data[3]]),
        seq: u32::from_be_bytes([tcp_data[4], tcp_data[5], tcp_data[6], tcp_data[7]]),
        ack: u32::from_be_bytes([tcp_data[8], tcp_data[9], tcp_data[10], tcp_data[11]]),
        data_offset,
        flags,
        window: u16::from_be_bytes([tcp_data[14], tcp_data[15]]),
        checksum: u16::from_be_bytes([tcp_data[16], tcp_data[17]]),
        urgent: u16::from_be_bytes([tcp_data[18], tcp_data[19]]),
        options: parse_tcp_options(&tcp_data[20..tcp_hdr_len]),
    };
    Ok(Packet {
        timestamp,
        ip,
        tcp,
        payload: tcp_data[tcp_hdr_len..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn well_formed() -> Packet {
        let ip = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 64);
        let mut tcp = TcpHeader::new(4321, 443, 0xdeadbeef, 0x01020304);
        tcp.flags = TcpFlags::SYN;
        tcp.options = vec![
            TcpOption::Mss(1460),
            TcpOption::SackPermitted,
            TcpOption::Timestamps { tsval: 1, tsecr: 0 },
            TcpOption::WindowScale(7),
        ];
        Packet::new(0.0, ip, tcp, Vec::new())
    }

    #[test]
    fn round_trip_well_formed() {
        let p = well_formed();
        let bytes = serialize_packet(&p);
        let q = parse_packet(0.0, &bytes).unwrap();
        assert_eq!(p.ip, q.ip);
        assert_eq!(p.tcp.src_port, q.tcp.src_port);
        assert_eq!(p.tcp.seq, q.tcp.seq);
        assert_eq!(p.tcp.flags, q.tcp.flags);
        assert_eq!(p.tcp.options, q.tcp.options);
        assert_eq!(p.payload, q.payload);
        assert!(q.ip_checksum_valid());
        assert!(q.tcp_checksum_valid());
    }

    #[test]
    fn ns_flag_round_trips() {
        let mut p = well_formed();
        p.tcp.flags |= TcpFlags::NS;
        p.fill_checksums();
        let q = parse_packet(0.0, &serialize_packet(&p)).unwrap();
        assert!(q.tcp.flags.contains(TcpFlags::NS));
    }

    #[test]
    fn corrupt_total_length_survives_round_trip() {
        let mut p = well_formed();
        p.ip.total_length = 9; // nonsense, deliberately
        let bytes = serialize_packet(&p);
        let q = parse_packet(0.0, &bytes).unwrap();
        assert_eq!(q.ip.total_length, 9);
        assert!(!q.ip_checksum_valid()); // checksum was for the old value
    }

    #[test]
    fn corrupt_data_offset_is_clamped_not_panicking() {
        let mut p = well_formed();
        p.tcp.data_offset = 15; // claims 60-byte header, actual is 36
        let bytes = serialize_packet(&p);
        let q = parse_packet(0.0, &bytes).unwrap();
        assert_eq!(q.tcp.data_offset, 15);
    }

    #[test]
    fn short_buffers_error() {
        assert_eq!(
            parse_packet(0.0, &[0; 10]),
            Err(ParseError::TruncatedIpHeader)
        );
        let mut buf = vec![0x45u8; 25];
        buf[9] = 6;
        assert_eq!(parse_packet(0.0, &buf), Err(ParseError::TruncatedTcpHeader));
    }

    #[test]
    fn non_tcp_rejected() {
        let mut buf = vec![0u8; 40];
        buf[0] = 0x45;
        buf[9] = 17; // UDP
        assert_eq!(parse_packet(0.0, &buf), Err(ParseError::NotTcp(17)));
    }

    #[test]
    fn malformed_option_length_preserved_verbatim() {
        let bytes = [2, 60, 5, 0]; // MSS with absurd length
        let opts = parse_tcp_options(&bytes);
        assert_eq!(opts.len(), 1);
        assert_eq!(opts[0], TcpOption::Raw(bytes.to_vec()));
        // The whole point of `Raw`: the wire image survives re-serialization.
        assert_eq!(serialize_tcp_options(&opts), bytes.to_vec());
    }

    #[test]
    fn nop_and_eol_handling() {
        let bytes = [1, 1, 2, 4, 0x05, 0xb4, 0, 0];
        let opts = parse_tcp_options(&bytes);
        assert_eq!(
            opts,
            vec![TcpOption::Nop, TcpOption::Nop, TcpOption::Mss(1460)]
        );
        // NOPs and trailing padding survive re-serialization byte-exactly.
        assert_eq!(serialize_tcp_options(&opts), bytes.to_vec());
    }

    #[test]
    fn md5_option_round_trip() {
        let bytes = serialize_tcp_options(&[TcpOption::Md5([0xaa; 16])]);
        assert_eq!(bytes.len(), 20); // 18 padded to 20
        let opts = parse_tcp_options(&bytes);
        assert_eq!(opts, vec![TcpOption::Md5([0xaa; 16])]);
    }
}
