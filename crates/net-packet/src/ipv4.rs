//! IPv4 header model.
//!
//! Every field is stored verbatim so that deliberately invalid values
//! (wrong version, bad header length, corrupt total length) survive
//! serialization — DPI-evasion strategies depend on emitting such packets.

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Fixed IPv4 header length in 32-bit words (no options).
pub const BASE_IHL: u8 = 5;

/// IP protocol number for TCP.
pub const PROTO_TCP: u8 = 6;

/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;

/// More-fragments bit within the IPv4 flags field.
pub const FLAG_MF: u8 = 0b001;

/// Don't-fragment bit within the IPv4 flags field.
pub const FLAG_DF: u8 = 0b010;

/// Structured IPv4 header.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Header {
    /// IP version. 4 for well-formed packets; attacks may set e.g. 5.
    pub version: u8,
    /// Header length in 32-bit words as written on the wire. For a
    /// well-formed packet this is `BASE_IHL + ceil(options/4)`.
    pub ihl: u8,
    /// Type of service / DSCP+ECN byte.
    pub tos: u8,
    /// Total datagram length in bytes as written on the wire. Attacks may
    /// store values longer or shorter than the actual packet.
    pub total_length: u16,
    /// Identification field.
    pub identification: u16,
    /// Flags (3 bits: reserved, DF, MF).
    pub flags: u8,
    /// Fragment offset in 8-byte units (13 bits).
    pub fragment_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Encapsulated protocol (6 = TCP).
    pub protocol: u8,
    /// Header checksum as written on the wire.
    pub checksum: u16,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Raw option bytes (will be zero-padded to a 4-byte boundary on wire).
    pub options: Vec<u8>,
}

impl Ipv4Header {
    /// A well-formed TCP/IPv4 header with no options; lengths and checksum
    /// are finalized by [`crate::Packet::new`].
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, ttl: u8) -> Self {
        Ipv4Header {
            version: 4,
            ihl: BASE_IHL,
            tos: 0,
            total_length: 0,
            identification: 0,
            flags: 0b010, // DF
            fragment_offset: 0,
            ttl,
            protocol: PROTO_TCP,
            checksum: 0,
            src,
            dst,
            options: Vec::new(),
        }
    }

    /// Actual header length in bytes implied by the structure (20 + padded
    /// options), independent of the possibly-corrupted `ihl` field.
    pub fn header_len_bytes(&self) -> usize {
        20 + self.options.len().div_ceil(4) * 4
    }

    /// Header length in bytes implied by the on-wire `ihl` field.
    pub fn ihl_bytes(&self) -> usize {
        self.ihl as usize * 4
    }

    /// True when the on-wire `ihl` agrees with the actual option length and
    /// is within the legal range [5, 15].
    pub fn ihl_consistent(&self) -> bool {
        (BASE_IHL..=15).contains(&self.ihl) && self.ihl_bytes() == self.header_len_bytes()
    }

    /// True when non-standard options are present. The CLAP feature set has
    /// a binary "existence of non-standard IP options" feature (#32).
    pub fn has_nonstandard_options(&self) -> bool {
        // Treat any IP option other than End-of-List/NOP padding as
        // non-standard: options are essentially unused on the modern
        // Internet, so benign traffic carries none.
        self.options.iter().any(|&b| b != 0 && b != 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr() -> Ipv4Header {
        Ipv4Header::new(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8), 64)
    }

    #[test]
    fn base_header_is_20_bytes() {
        let h = hdr();
        assert_eq!(h.header_len_bytes(), 20);
        assert!(h.ihl_consistent());
    }

    #[test]
    fn options_round_up_to_word() {
        let mut h = hdr();
        h.options = vec![7, 4, 0]; // 3 bytes -> padded to 4
        assert_eq!(h.header_len_bytes(), 24);
        h.ihl = 6;
        assert!(h.ihl_consistent());
    }

    #[test]
    fn corrupt_ihl_is_flagged() {
        let mut h = hdr();
        h.ihl = 15;
        assert!(!h.ihl_consistent());
        h.ihl = 4; // below minimum
        assert!(!h.ihl_consistent());
    }

    #[test]
    fn nonstandard_options_detected() {
        let mut h = hdr();
        assert!(!h.has_nonstandard_options());
        h.options = vec![1, 1, 1, 0]; // NOP padding only
        assert!(!h.has_nonstandard_options());
        h.options = vec![7, 4, 0, 0]; // Record Route
        assert!(h.has_nonstandard_options());
    }
}
