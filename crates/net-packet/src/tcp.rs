//! TCP header and option model.

use serde::{Deserialize, Serialize};

/// TCP flag bits, including the ECN-nonce (NS) bit from RFC 3540.
///
/// Implemented as a plain newtype over `u16` (bits 0..=8) rather than via a
/// macro crate, keeping the wire mapping explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags(pub u16);

impl TcpFlags {
    pub const FIN: TcpFlags = TcpFlags(1 << 0);
    pub const SYN: TcpFlags = TcpFlags(1 << 1);
    pub const RST: TcpFlags = TcpFlags(1 << 2);
    pub const PSH: TcpFlags = TcpFlags(1 << 3);
    pub const ACK: TcpFlags = TcpFlags(1 << 4);
    pub const URG: TcpFlags = TcpFlags(1 << 5);
    pub const ECE: TcpFlags = TcpFlags(1 << 6);
    pub const CWR: TcpFlags = TcpFlags(1 << 7);
    pub const NS: TcpFlags = TcpFlags(1 << 8);

    /// The empty flag set.
    pub const fn empty() -> Self {
        TcpFlags(0)
    }

    /// True when every bit of `other` is set in `self`.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True when any bit of `other` is set in `self`.
    pub const fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// Number of flag bits set.
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Flag bits in packet order for one-hot feature encoding:
    /// FIN, SYN, RST, PSH, ACK, URG, ECE, CWR, NS.
    pub const ALL: [TcpFlags; 9] = [
        TcpFlags::FIN,
        TcpFlags::SYN,
        TcpFlags::RST,
        TcpFlags::PSH,
        TcpFlags::ACK,
        TcpFlags::URG,
        TcpFlags::ECE,
        TcpFlags::CWR,
        TcpFlags::NS,
    ];
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: TcpFlags) {
        self.0 |= rhs.0;
    }
}

impl std::ops::BitAnd for TcpFlags {
    type Output = TcpFlags;
    fn bitand(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 & rhs.0)
    }
}

impl std::ops::Not for TcpFlags {
    type Output = TcpFlags;
    fn not(self) -> TcpFlags {
        TcpFlags(!self.0 & 0x1ff)
    }
}

impl std::fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        const NAMES: [&str; 9] = ["FIN", "SYN", "RST", "PSH", "ACK", "URG", "ECE", "CWR", "NS"];
        let mut first = true;
        for (i, name) in NAMES.iter().enumerate() {
            if self.0 & (1 << i) != 0 {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "(none)")?;
        }
        Ok(())
    }
}

/// A parsed TCP option.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TcpOption {
    /// Kind 2: maximum segment size (SYN only in well-formed traffic).
    Mss(u16),
    /// Kind 3: window scale shift count.
    WindowScale(u8),
    /// Kind 4: SACK permitted.
    SackPermitted,
    /// Kind 5: selective acknowledgement blocks.
    Sack(Vec<(u32, u32)>),
    /// Kind 8: RFC 7323 timestamps.
    Timestamps { tsval: u32, tsecr: u32 },
    /// Kind 19: TCP MD5 signature (RFC 2385). The 16 digest bytes are kept
    /// verbatim; middleboxes cannot validate them without the key, which is
    /// exactly why evasion strategies abuse this option.
    Md5([u8; 16]),
    /// Kind 28: user timeout (RFC 5482), granularity bit + 15-bit timeout.
    UserTimeout(u16),
    /// Kind 1: no-operation padding byte, preserved so parse→serialize
    /// reproduces the original option area byte-exactly.
    Nop,
    /// Any other option kind, kept raw.
    Unknown { kind: u8, data: Vec<u8> },
    /// Malformed trailing option bytes (e.g. a lying length byte, or
    /// payload bytes pulled into the option area by a corrupted data
    /// offset), preserved verbatim so the wire image round-trips
    /// bit-exactly through capture and re-serialization.
    Raw(Vec<u8>),
}

impl TcpOption {
    /// On-wire length in bytes (kind + length + payload; end-of-list
    /// padding is handled by the serializer, not represented here).
    pub fn wire_len(&self) -> usize {
        match self {
            TcpOption::Mss(_) => 4,
            TcpOption::WindowScale(_) => 3,
            TcpOption::SackPermitted => 2,
            TcpOption::Sack(blocks) => 2 + blocks.len() * 8,
            TcpOption::Timestamps { .. } => 10,
            TcpOption::Md5(_) => 18,
            TcpOption::UserTimeout(_) => 4,
            TcpOption::Unknown { data, .. } => 2 + data.len(),
            TcpOption::Nop => 1,
            TcpOption::Raw(bytes) => bytes.len(),
        }
    }

    /// Option kind byte.
    pub fn kind(&self) -> u8 {
        match self {
            TcpOption::Mss(_) => 2,
            TcpOption::WindowScale(_) => 3,
            TcpOption::SackPermitted => 4,
            TcpOption::Sack(_) => 5,
            TcpOption::Timestamps { .. } => 8,
            TcpOption::Md5(_) => 19,
            TcpOption::UserTimeout(_) => 28,
            TcpOption::Unknown { kind, .. } => *kind,
            TcpOption::Nop => 1,
            TcpOption::Raw(bytes) => bytes.first().copied().unwrap_or(0),
        }
    }
}

/// Structured TCP header. As with [`crate::Ipv4Header`], scalar fields are
/// stored verbatim so attacks can corrupt them and still serialize.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Data offset in 32-bit words as written on the wire. A well-formed
    /// header has `5 + ceil(options_wire_len/4)`; attacks store invalid
    /// values (e.g. < 5 or beyond the packet end).
    pub data_offset: u8,
    pub flags: TcpFlags,
    pub window: u16,
    /// Checksum as written on the wire.
    pub checksum: u16,
    pub urgent: u16,
    pub options: Vec<TcpOption>,
}

impl TcpHeader {
    /// A bare header with the given ports and sequence numbers; flags and
    /// options are filled in by the caller.
    pub fn new(src_port: u16, dst_port: u16, seq: u32, ack: u32) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack,
            data_offset: 5,
            flags: TcpFlags::empty(),
            window: 65535,
            checksum: 0,
            urgent: 0,
            options: Vec::new(),
        }
    }

    /// Total length in bytes of the serialized options, padded to a 4-byte
    /// boundary.
    pub fn options_len_bytes(&self) -> usize {
        let raw: usize = self.options.iter().map(TcpOption::wire_len).sum();
        raw.div_ceil(4) * 4
    }

    /// Actual header length in bytes implied by the structure.
    pub fn header_len_bytes(&self) -> usize {
        20 + self.options_len_bytes()
    }

    /// Sets `data_offset` to the value consistent with the options.
    pub fn normalize_data_offset(&mut self) {
        self.data_offset = (self.header_len_bytes() / 4) as u8;
    }

    /// True when the on-wire data offset matches the actual header length
    /// and lies in the legal range [5, 15].
    pub fn data_offset_consistent(&self) -> bool {
        (5..=15).contains(&self.data_offset)
            && self.data_offset as usize * 4 == self.header_len_bytes()
    }

    /// First option of the given kind, if any.
    pub fn option(&self, kind: u8) -> Option<&TcpOption> {
        self.options.iter().find(|o| o.kind() == kind)
    }

    /// RFC 7323 timestamp option values, if present.
    pub fn timestamps(&self) -> Option<(u32, u32)> {
        self.options.iter().find_map(|o| match o {
            TcpOption::Timestamps { tsval, tsecr } => Some((*tsval, *tsecr)),
            _ => None,
        })
    }

    /// MSS option value, if present.
    pub fn mss(&self) -> Option<u16> {
        self.options.iter().find_map(|o| match o {
            TcpOption::Mss(v) => Some(*v),
            _ => None,
        })
    }

    /// Window-scale option value, if present.
    pub fn window_scale(&self) -> Option<u8> {
        self.options.iter().find_map(|o| match o {
            TcpOption::WindowScale(v) => Some(*v),
            _ => None,
        })
    }

    /// User-timeout option value, if present.
    pub fn user_timeout(&self) -> Option<u16> {
        self.options.iter().find_map(|o| match o {
            TcpOption::UserTimeout(v) => Some(*v),
            _ => None,
        })
    }

    /// True when an MD5 signature option is present.
    pub fn has_md5(&self) -> bool {
        self.options.iter().any(|o| matches!(o, TcpOption::Md5(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_ops() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::FIN));
        assert!(f.intersects(TcpFlags::SYN | TcpFlags::RST));
        assert_eq!(f.count(), 2);
        assert_eq!(format!("{f}"), "SYN|ACK");
        assert_eq!(format!("{}", TcpFlags::empty()), "(none)");
    }

    #[test]
    fn flags_not_masks_to_nine_bits() {
        let inv = !TcpFlags::empty();
        assert_eq!(inv.0, 0x1ff);
        assert_eq!(inv.count(), 9);
    }

    #[test]
    fn option_lengths() {
        assert_eq!(TcpOption::Mss(1460).wire_len(), 4);
        assert_eq!(TcpOption::WindowScale(7).wire_len(), 3);
        assert_eq!(TcpOption::SackPermitted.wire_len(), 2);
        assert_eq!(TcpOption::Sack(vec![(1, 2), (3, 4)]).wire_len(), 18);
        assert_eq!(TcpOption::Timestamps { tsval: 0, tsecr: 0 }.wire_len(), 10);
        assert_eq!(TcpOption::Md5([0; 16]).wire_len(), 18);
        assert_eq!(TcpOption::UserTimeout(30).wire_len(), 4);
    }

    #[test]
    fn data_offset_normalization() {
        let mut h = TcpHeader::new(1, 2, 0, 0);
        assert_eq!(h.header_len_bytes(), 20);
        h.options.push(TcpOption::Mss(1460));
        h.options.push(TcpOption::WindowScale(7));
        h.options.push(TcpOption::SackPermitted);
        // 4 + 3 + 2 = 9 bytes -> padded to 12
        assert_eq!(h.options_len_bytes(), 12);
        h.normalize_data_offset();
        assert_eq!(h.data_offset, 8);
        assert!(h.data_offset_consistent());
        h.data_offset = 15;
        assert!(!h.data_offset_consistent());
    }

    #[test]
    fn option_accessors() {
        let mut h = TcpHeader::new(1, 2, 0, 0);
        h.options.push(TcpOption::Mss(1400));
        h.options.push(TcpOption::Timestamps {
            tsval: 10,
            tsecr: 20,
        });
        h.options.push(TcpOption::Md5([7; 16]));
        h.options.push(TcpOption::UserTimeout(120));
        assert_eq!(h.mss(), Some(1400));
        assert_eq!(h.timestamps(), Some((10, 20)));
        assert_eq!(h.user_timeout(), Some(120));
        assert!(h.has_md5());
        assert!(h.window_scale().is_none());
        assert!(h.option(2).is_some());
        assert!(h.option(3).is_none());
    }
}
