//! IPv4 fragment reassembly.
//!
//! [`crate::wire::parse_packet`] refuses to decode a fragment as a
//! transport packet (see [`crate::wire::ParseError::Fragment`]); the raw
//! bytes are routed here instead. The reassembler keeps a bounded per-key
//! cache — keyed by (src, dst, identification, protocol) per RFC 791 —
//! with timing-wheel expiry, and applies a **first-received-wins** overlap
//! policy: bytes already accepted for a range are never replaced, and a
//! later fragment that overlaps them is recorded as `overlapped` (plus
//! `conflicting` when the overlapping bytes actually differ). Overlap is a
//! classic DPI-evasion vector — different OSes resolve it differently — so
//! the verdict-relevant outcome is surfaced on the reassembled packet via
//! [`ReassemblyInfo`] and folded into the feature vector downstream.
//!
//! When a datagram completes, the initial fragment's header bytes are
//! patched (MF cleared, offset zeroed, `total_length` set to the true
//! size, checksum recomputed) and the whole datagram goes back through
//! [`crate::wire::parse_packet`], so a reassembled packet honors exactly
//! the same lenient-parse contract as an unfragmented one.

use crate::checksum::{finalize, ones_complement_sum};
use crate::ipv4::FLAG_MF;
use crate::{wire, Packet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How a reassembled packet came to be, attached as
/// [`crate::Packet::reassembly`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReassemblyInfo {
    /// Number of fragments that contributed to (or collided with) the
    /// datagram.
    pub fragments: u16,
    /// True when any fragment overlapped bytes already received.
    pub overlapped: bool,
    /// True when overlapping bytes disagreed — the signature of an
    /// overlap-evasion attack rather than a benign retransmission.
    pub conflicting: bool,
}

/// Reassembly key per RFC 791: source, destination, identification and
/// protocol, taken from the raw v4 header bytes.
type Key = ([u8; 4], [u8; 4], u16, u8);

#[derive(Debug)]
struct Entry {
    /// Header bytes (fixed part + options) of the offset-0 fragment;
    /// empty until the initial fragment arrives.
    header: Vec<u8>,
    /// Accepted payload ranges, sorted by offset, non-overlapping
    /// (first-received bytes win).
    ranges: Vec<(usize, Vec<u8>)>,
    /// Datagram payload size, established by the MF=0 fragment.
    total_len: Option<usize>,
    fragments: u16,
    overlapped: bool,
    conflicting: bool,
    expires_at: f64,
}

impl Entry {
    fn complete(&self) -> bool {
        let Some(total) = self.total_len else {
            return false;
        };
        if self.header.is_empty() {
            return false;
        }
        let mut covered = 0usize;
        for (off, data) in &self.ranges {
            if *off > covered {
                return false; // hole
            }
            covered = covered.max(off + data.len());
        }
        covered >= total
    }
}

const WHEEL_SLOTS: usize = 64;

/// Bounded IPv4 fragment reassembler with timing-wheel expiry.
#[derive(Debug)]
pub struct Reassembler {
    entries: HashMap<Key, Entry>,
    capacity: usize,
    timeout: f64,
    /// Timing wheel: each slot holds the keys whose deadline falls in that
    /// slot's window. Entries are checked lazily on drain (a key may have
    /// been re-armed to a later deadline, or already removed).
    wheel: Vec<Vec<Key>>,
    slot_width: f64,
    cur_slot: usize,
    cur_time: f64,
    started: bool,
    expired: u64,
    evicted: u64,
}

impl Default for Reassembler {
    fn default() -> Self {
        Self::new()
    }
}

impl Reassembler {
    /// Default limits: 256 concurrent datagrams, 30-second fragment
    /// timeout (the classic BSD reassembly timer).
    pub fn new() -> Self {
        Self::with_limits(256, 30.0)
    }

    /// A reassembler bounded to `capacity` concurrent datagrams whose
    /// fragments expire `timeout` seconds after the last arrival.
    pub fn with_limits(capacity: usize, timeout: f64) -> Self {
        let capacity = capacity.max(1);
        let timeout = if timeout > 0.0 { timeout } else { 30.0 };
        Reassembler {
            entries: HashMap::new(),
            capacity,
            timeout,
            wheel: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            slot_width: timeout / WHEEL_SLOTS as f64,
            cur_slot: 0,
            cur_time: 0.0,
            started: false,
            expired: 0,
            evicted: 0,
        }
    }

    /// Datagrams currently awaiting more fragments.
    pub fn pending(&self) -> usize {
        self.entries.len()
    }

    /// Incomplete datagrams dropped by the fragment timeout so far.
    pub fn expired(&self) -> u64 {
        self.expired
    }

    /// Incomplete datagrams evicted by the capacity bound so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    fn schedule(&mut self, key: Key, expires_at: f64) {
        let delta = ((expires_at - self.cur_time) / self.slot_width).ceil();
        let delta = (delta as usize).clamp(1, WHEEL_SLOTS - 1);
        self.wheel[(self.cur_slot + delta) % WHEEL_SLOTS].push(key);
    }

    /// Advances the wheel to `now`, expiring entries whose deadline passed.
    fn tick(&mut self, now: f64) {
        if !self.started {
            self.started = true;
            self.cur_time = now;
            return;
        }
        // Cap the walk at one full revolution: after WHEEL_SLOTS steps every
        // slot has been drained once and older deadlines are all behind us.
        let mut steps = 0;
        while self.cur_time + self.slot_width <= now && steps < WHEEL_SLOTS {
            self.cur_time += self.slot_width;
            self.cur_slot = (self.cur_slot + 1) % WHEEL_SLOTS;
            steps += 1;
            let due = std::mem::take(&mut self.wheel[self.cur_slot]);
            for key in due {
                match self.entries.get(&key) {
                    Some(e) if e.expires_at <= self.cur_time => {
                        self.entries.remove(&key);
                        self.expired += 1;
                    }
                    // Re-armed to a later deadline: put it back on the wheel.
                    Some(e) => {
                        let at = e.expires_at;
                        self.schedule(key, at);
                    }
                    None => {}
                }
            }
        }
        if self.cur_time + self.slot_width <= now {
            // More than a full revolution elapsed; everything pending is
            // older than the timeout.
            self.expired += self.entries.len() as u64;
            self.entries.clear();
            self.cur_time = now;
        }
    }

    fn evict_if_full(&mut self) {
        while self.entries.len() >= self.capacity {
            // Linear scan is fine at the default capacity of 256.
            let victim = self
                .entries
                .iter()
                .min_by(|a, b| a.1.expires_at.total_cmp(&b.1.expires_at))
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    self.entries.remove(&k);
                    self.evicted += 1;
                }
                None => break,
            }
        }
    }

    /// Feeds one raw IPv4 fragment. Returns the fully reassembled packet
    /// when this fragment completes its datagram (and the reconstructed
    /// datagram parses), `None` while the datagram is still incomplete or
    /// when the bytes are not a usable v4 fragment. The returned packet
    /// carries the completing fragment's timestamp and a
    /// [`ReassemblyInfo`].
    pub fn push(&mut self, timestamp: f64, raw: &[u8]) -> Option<Packet> {
        self.tick(timestamp);

        if raw.len() < 20 || raw[0] >> 4 == 6 {
            return None;
        }
        let ip_hdr_len = ((raw[0] & 0x0f) as usize * 4).clamp(20, raw.len());
        let frag = u16::from_be_bytes([raw[6], raw[7]]);
        let more = (frag >> 13) as u8 & FLAG_MF != 0;
        let offset = ((frag & 0x1fff) as usize) * 8;
        let total_length = u16::from_be_bytes([raw[2], raw[3]]) as usize;
        let end = if total_length > ip_hdr_len && total_length <= raw.len() {
            total_length
        } else {
            raw.len()
        };
        let data = &raw[ip_hdr_len..end];
        if data.is_empty() && more {
            return None; // empty non-final fragment carries no information
        }

        let key: Key = (
            raw[12..16].try_into().expect("4 bytes"),
            raw[16..20].try_into().expect("4 bytes"),
            u16::from_be_bytes([raw[4], raw[5]]),
            raw[9],
        );

        if !self.entries.contains_key(&key) {
            self.evict_if_full();
            self.entries.insert(
                key,
                Entry {
                    header: Vec::new(),
                    ranges: Vec::new(),
                    total_len: None,
                    fragments: 0,
                    overlapped: false,
                    conflicting: false,
                    expires_at: 0.0,
                },
            );
        }
        let entry = self.entries.get_mut(&key).expect("just inserted");
        entry.fragments = entry.fragments.saturating_add(1);
        entry.expires_at = timestamp + self.timeout;

        if offset == 0 && entry.header.is_empty() {
            entry.header = raw[..ip_hdr_len].to_vec();
        }
        if !more {
            // First-received wins for the datagram size, too.
            entry.total_len.get_or_insert(offset + data.len());
        }

        // First-received-wins insert: keep only the sub-ranges of the new
        // fragment not already covered, recording overlap and byte
        // conflicts against what is.
        let mut cursor = offset;
        let new_end = offset + data.len();
        let mut fresh: Vec<(usize, Vec<u8>)> = Vec::new();
        for (roff, rdata) in &entry.ranges {
            let rend = roff + rdata.len();
            if rend <= cursor || *roff >= new_end {
                continue;
            }
            if *roff > cursor {
                fresh.push((cursor, data[cursor - offset..*roff - offset].to_vec()));
            }
            let lo = cursor.max(*roff);
            let hi = new_end.min(rend);
            if lo < hi {
                entry.overlapped = true;
                if data[lo - offset..hi - offset] != rdata[lo - roff..hi - roff] {
                    entry.conflicting = true;
                }
            }
            cursor = cursor.max(rend);
        }
        if cursor < new_end {
            fresh.push((cursor, data[cursor - offset..].to_vec()));
        }
        entry.ranges.extend(fresh);
        entry.ranges.sort_by_key(|(off, _)| *off);

        if !entry.complete() {
            self.schedule(key, timestamp + self.timeout);
            return None;
        }

        let entry = self.entries.remove(&key).expect("checked above");
        let total = entry.total_len.expect("complete implies total_len");
        let mut payload = vec![0u8; total];
        for (off, data) in &entry.ranges {
            if *off >= total {
                continue;
            }
            let take = data.len().min(total - off);
            payload[*off..off + take].copy_from_slice(&data[..take]);
        }

        // Patch the initial fragment's header into the whole-datagram
        // header: clear MF, zero the offset, set the true total length and
        // recompute the checksum.
        let mut header = entry.header;
        let flags = (header[6] >> 5) & !FLAG_MF;
        header[6] = flags << 5;
        header[7] = 0;
        let total_length = (header.len() + total).min(u16::MAX as usize) as u16;
        header[2..4].copy_from_slice(&total_length.to_be_bytes());
        header[10..12].copy_from_slice(&[0, 0]);
        let checksum = finalize(ones_complement_sum(&header, 0));
        header[10..12].copy_from_slice(&checksum.to_be_bytes());

        let mut datagram = header;
        datagram.extend_from_slice(&payload);
        let mut packet = wire::parse_packet(timestamp, &datagram).ok()?;
        packet.reassembly = Some(ReassemblyInfo {
            fragments: entry.fragments,
            overlapped: entry.overlapped,
            conflicting: entry.conflicting,
        });
        Some(packet)
    }
}

/// Splits a serialized IPv4 datagram into raw fragments of at most
/// `frag_payload` payload bytes each (rounded down to the required 8-byte
/// multiple, minimum 8). Each fragment repeats the IP header with the
/// fragment offset set, MF on every fragment but the last, `total_length`
/// fixed up and the checksum recomputed. Non-v4 or too-short input is
/// returned as a single "fragment" unchanged.
pub fn fragment_datagram(datagram: &[u8], frag_payload: usize) -> Vec<Vec<u8>> {
    if datagram.len() < 20 || datagram[0] >> 4 == 6 {
        return vec![datagram.to_vec()];
    }
    let ip_hdr_len = ((datagram[0] & 0x0f) as usize * 4).clamp(20, datagram.len());
    let header = &datagram[..ip_hdr_len];
    let payload = &datagram[ip_hdr_len..];
    let chunk = (frag_payload / 8 * 8).max(8);
    if payload.len() <= chunk {
        return vec![datagram.to_vec()];
    }

    let mut out = Vec::with_capacity(payload.len().div_ceil(chunk));
    let mut offset = 0usize;
    while offset < payload.len() {
        let end = (offset + chunk).min(payload.len());
        let more = end < payload.len();
        let mut h = header.to_vec();
        // DF would contradict what we are doing; carry MF + offset instead.
        let flags = if more { FLAG_MF } else { 0 };
        let frag = (u16::from(flags) << 13) | ((offset / 8) as u16 & 0x1fff);
        h[6..8].copy_from_slice(&frag.to_be_bytes());
        let total_length = (ip_hdr_len + end - offset).min(u16::MAX as usize) as u16;
        h[2..4].copy_from_slice(&total_length.to_be_bytes());
        h[10..12].copy_from_slice(&[0, 0]);
        let checksum = finalize(ones_complement_sum(&h, 0));
        h[10..12].copy_from_slice(&checksum.to_be_bytes());
        h.extend_from_slice(&payload[offset..end]);
        out.push(h);
        offset = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ipv4Header, TcpFlags, TcpHeader};
    use std::net::Ipv4Addr;

    fn datagram(payload_len: usize) -> (Packet, Vec<u8>) {
        let mut ip = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 64);
        ip.identification = 0x7777;
        let mut tcp = TcpHeader::new(4321, 443, 1000, 2000);
        tcp.flags = TcpFlags::ACK | TcpFlags::PSH;
        let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
        let p = Packet::new(0.0, ip, tcp, payload);
        let bytes = wire::serialize_packet(&p);
        (p, bytes)
    }

    #[test]
    fn protocol_fragmented_datagram_reassembles_in_order() {
        let (orig, bytes) = datagram(100);
        let frags = fragment_datagram(&bytes, 32);
        assert_eq!(frags.len(), 4); // 20 TCP hdr + 100 payload over 32-byte chunks
        let mut r = Reassembler::new();
        let mut done = None;
        for (i, f) in frags.iter().enumerate() {
            assert!(
                wire::parse_packet(0.0, f).is_err(),
                "fragments must not parse"
            );
            done = r.push(i as f64 * 0.001, f);
            if i + 1 < frags.len() {
                assert!(done.is_none());
            }
        }
        let p = done.expect("last fragment completes the datagram");
        assert_eq!(p.payload, orig.payload);
        assert_eq!(p.tcp().seq, orig.tcp().seq);
        assert_eq!(p.tcp().src_port, orig.tcp().src_port);
        assert!(p.ip_checksum_valid());
        assert!(p.transport_checksum_valid());
        let info = p.reassembly.expect("reassembled packets carry info");
        assert_eq!(info.fragments, 4);
        assert!(!info.overlapped);
        assert!(!info.conflicting);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn protocol_reassembles_out_of_order() {
        let (orig, bytes) = datagram(64);
        let mut frags = fragment_datagram(&bytes, 24);
        frags.reverse();
        let mut r = Reassembler::new();
        let mut done = None;
        for f in &frags {
            done = r.push(0.0, f);
        }
        let p = done.expect("completes once the hole at offset 0 is filled");
        assert_eq!(p.payload, orig.payload);
        assert!(p.transport_checksum_valid());
    }

    #[test]
    fn protocol_overlap_first_received_wins() {
        let (orig, bytes) = datagram(48);
        let frags = fragment_datagram(&bytes, 32);
        assert_eq!(frags.len(), 3);
        // A duplicate of fragment #1 with altered content, injected between
        // the real ones: its bytes must lose to the already-received copy.
        let mut evil = frags[1].clone();
        let start = evil.len() - 8;
        for b in &mut evil[start..] {
            *b ^= 0xff;
        }
        let mut r = Reassembler::new();
        assert!(r.push(0.0, &frags[0]).is_none());
        assert!(r.push(0.1, &frags[1]).is_none());
        assert!(r.push(0.2, &evil).is_none());
        let p = r.push(0.3, &frags[2]).expect("complete");
        assert_eq!(p.payload, orig.payload, "first-received bytes must win");
        let info = p.reassembly.unwrap();
        assert_eq!(info.fragments, 4);
        assert!(info.overlapped);
        assert!(info.conflicting);
    }

    #[test]
    fn protocol_benign_duplicate_is_overlap_without_conflict() {
        let (_, bytes) = datagram(48);
        let frags = fragment_datagram(&bytes, 40);
        assert_eq!(frags.len(), 2); // 20 TCP hdr + 48 payload over 40-byte chunks
        let mut r = Reassembler::new();
        assert!(r.push(0.0, &frags[0]).is_none());
        assert!(r.push(0.1, &frags[0]).is_none()); // straight retransmit
        let p = r.push(0.2, &frags[1]).expect("complete");
        let info = p.reassembly.unwrap();
        assert!(info.overlapped);
        assert!(!info.conflicting);
    }

    #[test]
    fn protocol_incomplete_datagrams_expire() {
        let (_, bytes) = datagram(64);
        let frags = fragment_datagram(&bytes, 24);
        let mut r = Reassembler::with_limits(16, 5.0);
        assert!(r.push(0.0, &frags[0]).is_none());
        assert_eq!(r.pending(), 1);
        // An unrelated fragment far in the future drives the wheel forward.
        let (_, other) = datagram(64);
        let mut other_frags = fragment_datagram(&other, 24);
        other_frags[0][4..6].copy_from_slice(&0x9999u16.to_be_bytes());
        assert!(r.push(100.0, &other_frags[0]).is_none());
        assert_eq!(r.pending(), 1, "stale datagram expired, new one pending");
        assert_eq!(r.expired(), 1);
    }

    #[test]
    fn protocol_capacity_bound_evicts_oldest() {
        let (_, bytes) = datagram(64);
        let frags = fragment_datagram(&bytes, 24);
        let mut r = Reassembler::with_limits(4, 30.0);
        for id in 0..6u16 {
            let mut f = frags[0].clone();
            f[4..6].copy_from_slice(&id.to_be_bytes());
            assert!(r.push(id as f64 * 0.01, &f).is_none());
        }
        assert_eq!(r.pending(), 4);
        assert_eq!(r.evicted(), 2);
    }

    #[test]
    fn fragment_datagram_leaves_small_and_non_v4_alone() {
        let (_, bytes) = datagram(8);
        assert_eq!(fragment_datagram(&bytes, 64).len(), 1);
        let v6ish = vec![0x60u8; 60];
        assert_eq!(fragment_datagram(&v6ish, 8), vec![v6ish.clone()]);
    }
}
