//! Property-based tests for the wire codecs.

use net_packet::{wire, Ipv4Header, Packet, TcpFlags, TcpHeader, TcpOption};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    (0u16..=0x1ff).prop_map(TcpFlags)
}

fn arb_option() -> impl Strategy<Value = TcpOption> {
    prop_oneof![
        any::<u16>().prop_map(TcpOption::Mss),
        (0u8..=14).prop_map(TcpOption::WindowScale),
        Just(TcpOption::SackPermitted),
        prop::collection::vec((any::<u32>(), any::<u32>()), 1..=3).prop_map(TcpOption::Sack),
        (any::<u32>(), any::<u32>())
            .prop_map(|(tsval, tsecr)| TcpOption::Timestamps { tsval, tsecr }),
        any::<[u8; 16]>().prop_map(TcpOption::Md5),
        any::<u16>().prop_map(TcpOption::UserTimeout),
    ]
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        any::<[u8; 4]>(),
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        arb_flags(),
        any::<u16>(),
        any::<u16>(),
        prop::collection::vec(arb_option(), 0..4)
            .prop_filter("TCP options must fit the 40-byte option space", |opts| {
                opts.iter().map(TcpOption::wire_len).sum::<usize>() <= 36
            }),
        prop::collection::vec(any::<u8>(), 0..64),
        1u8..=255,
    )
        .prop_map(
            |(src, dst, sport, dport, seq, ack, flags, window, urgent, options, payload, ttl)| {
                let ip = Ipv4Header::new(Ipv4Addr::from(src), Ipv4Addr::from(dst), ttl);
                let mut tcp = TcpHeader::new(sport, dport, seq, ack);
                tcp.flags = flags;
                tcp.window = window;
                tcp.urgent = urgent;
                tcp.options = options;
                Packet::new(0.0, ip, tcp, payload)
            },
        )
}

proptest! {
    /// Any consistent packet survives serialize → parse unchanged.
    #[test]
    fn round_trip_consistent_packet(p in arb_packet()) {
        let bytes = p.to_bytes();
        let q = Packet::from_bytes(0.0, &bytes).unwrap();
        prop_assert_eq!(&p.ip, &q.ip);
        prop_assert_eq!(&p.tcp, &q.tcp);
        prop_assert_eq!(&p.payload, &q.payload);
    }

    /// Freshly built packets always carry valid checksums and consistent
    /// length fields.
    #[test]
    fn new_packets_are_well_formed(p in arb_packet()) {
        prop_assert!(p.ip_checksum_valid());
        prop_assert!(p.tcp_checksum_valid());
        prop_assert!(p.ip.ihl_consistent());
        prop_assert!(p.tcp.data_offset_consistent());
        prop_assert_eq!(p.ip.total_length as usize, p.wire_len());
    }

    /// Flipping any single byte of the fixed TCP header or the payload
    /// invalidates the TCP checksum. (The option region is excluded: bytes
    /// in end-of-list padding are not semantically part of the header, so a
    /// lenient parse + re-serialize legitimately canonicalizes them away.
    /// The checksum field itself is excluded for the obvious reason.)
    #[test]
    fn checksum_detects_single_byte_corruption(p in arb_packet(), which in 0usize..1000) {
        let ip_len = p.ip.header_len_bytes();
        let tcp_hdr_len = p.tcp.header_len_bytes();
        let seg_len = p.wire_len() - ip_len;
        let mut bytes = p.to_bytes();
        // Candidates: fixed header minus checksum bytes (16..18), plus payload.
        let candidates: Vec<usize> = (0..16)
            .chain(18..20)
            .chain(tcp_hdr_len..seg_len)
            .collect();
        let off = ip_len + candidates[which % candidates.len()];
        bytes[off] ^= 0x5a;
        let q = Packet::from_bytes(0.0, &bytes).unwrap();
        prop_assert!(!q.tcp_checksum_valid());
    }

    /// The parser never panics on arbitrary bytes.
    #[test]
    fn parser_never_panics(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = Packet::from_bytes(0.0, &data);
    }

    /// Arbitrary bytes through the option parser never panic and always
    /// terminate.
    #[test]
    fn option_parser_never_panics(data in prop::collection::vec(any::<u8>(), 0..60)) {
        let _ = wire::parse_tcp_options(&data);
    }

    /// The shard hash is symmetric: both directions of any 4-tuple produce
    /// the same canonical key, the same RSS hash and the same shard — the
    /// invariant that lets an RSS-partitioned front end keep each flow on
    /// one worker.
    #[test]
    fn shard_hash_is_direction_symmetric(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        shards in 1usize..12,
    ) {
        let ip_fwd = Ipv4Header::new(Ipv4Addr::from(src), Ipv4Addr::from(dst), 64);
        let ip_rev = Ipv4Header::new(Ipv4Addr::from(dst), Ipv4Addr::from(src), 64);
        let fwd = Packet::new(0.0, ip_fwd, TcpHeader::new(sport, dport, 1, 0), Vec::new());
        let rev = Packet::new(0.0, ip_rev, TcpHeader::new(dport, sport, 1, 0), Vec::new());
        let (a, b) = (net_packet::CanonicalKey::of(&fwd), net_packet::CanonicalKey::of(&rev));
        prop_assert_eq!(a, b);
        prop_assert_eq!(a.rss_hash(), b.rss_hash());
        prop_assert_eq!(a.shard_of(shards), b.shard_of(shards));
        prop_assert!(a.shard_of(shards) < shards);
    }

    /// pcap round trip preserves every packet.
    #[test]
    fn pcap_round_trip(pkts in prop::collection::vec(arb_packet(), 0..8)) {
        let mut buf = Vec::new();
        net_packet::pcap::write_pcap(&mut buf, &pkts).unwrap();
        let back = net_packet::pcap::read_pcap(&buf[..]).unwrap();
        prop_assert_eq!(pkts.len(), back.len());
        for (a, b) in pkts.iter().zip(&back) {
            prop_assert_eq!(&a.ip, &b.ip);
            prop_assert_eq!(&a.tcp, &b.tcp);
            prop_assert_eq!(&a.payload, &b.payload);
        }
    }
}
