//! Property-based tests for the wire codecs.

use net_packet::{
    fragment_datagram, wire, Ipv4Header, Ipv6Header, Packet, Reassembler, TcpFlags, TcpHeader,
    TcpOption, UdpHeader,
};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    (0u16..=0x1ff).prop_map(TcpFlags)
}

fn arb_option() -> impl Strategy<Value = TcpOption> {
    prop_oneof![
        any::<u16>().prop_map(TcpOption::Mss),
        (0u8..=14).prop_map(TcpOption::WindowScale),
        Just(TcpOption::SackPermitted),
        prop::collection::vec((any::<u32>(), any::<u32>()), 1..=3).prop_map(TcpOption::Sack),
        (any::<u32>(), any::<u32>())
            .prop_map(|(tsval, tsecr)| TcpOption::Timestamps { tsval, tsecr }),
        any::<[u8; 16]>().prop_map(TcpOption::Md5),
        any::<u16>().prop_map(TcpOption::UserTimeout),
    ]
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        any::<[u8; 4]>(),
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        arb_flags(),
        any::<u16>(),
        any::<u16>(),
        prop::collection::vec(arb_option(), 0..4)
            .prop_filter("TCP options must fit the 40-byte option space", |opts| {
                opts.iter().map(TcpOption::wire_len).sum::<usize>() <= 36
            }),
        prop::collection::vec(any::<u8>(), 0..64),
        1u8..=255,
    )
        .prop_map(
            |(src, dst, sport, dport, seq, ack, flags, window, urgent, options, payload, ttl)| {
                let ip = Ipv4Header::new(Ipv4Addr::from(src), Ipv4Addr::from(dst), ttl);
                let mut tcp = TcpHeader::new(sport, dport, seq, ack);
                tcp.flags = flags;
                tcp.window = window;
                tcp.urgent = urgent;
                tcp.options = options;
                Packet::new(0.0, ip, tcp, payload)
            },
        )
}

/// A well-formed packet drawn across both IP versions and both transports.
fn arb_mixed_packet() -> impl Strategy<Value = Packet> {
    (
        any::<[u8; 16]>(),
        any::<[u8; 16]>(),
        any::<bool>(),
        any::<bool>(),
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        arb_flags(),
        prop::collection::vec(any::<u8>(), 0..64),
        1u8..=255,
    )
        .prop_map(
            |(src, dst, v6, udp, sport, dport, seq, flags, payload, ttl)| {
                if v6 {
                    let (s, d) = (Ipv6Addr::from(src), Ipv6Addr::from(dst));
                    let ip = Ipv6Header::new(s, d, ttl);
                    if udp {
                        Packet::new_udp6(0.0, ip, UdpHeader::new(sport, dport), payload)
                    } else {
                        let mut tcp = TcpHeader::new(sport, dport, seq, 0);
                        tcp.flags = flags;
                        Packet::new_v6(0.0, ip, tcp, payload)
                    }
                } else {
                    let s = Ipv4Addr::new(src[0], src[1], src[2], src[3]);
                    let d = Ipv4Addr::new(dst[0], dst[1], dst[2], dst[3]);
                    let ip = Ipv4Header::new(s, d, ttl);
                    if udp {
                        Packet::new_udp(0.0, ip, UdpHeader::new(sport, dport), payload)
                    } else {
                        let mut tcp = TcpHeader::new(sport, dport, seq, 0);
                        tcp.flags = flags;
                        Packet::new(0.0, ip, tcp, payload)
                    }
                }
            },
        )
}

proptest! {
    /// Any consistent packet survives serialize → parse unchanged.
    #[test]
    fn round_trip_consistent_packet(p in arb_packet()) {
        let bytes = p.to_bytes();
        let q = Packet::from_bytes(0.0, &bytes).unwrap();
        prop_assert_eq!(&p.ip, &q.ip);
        prop_assert_eq!(p.tcp(), q.tcp());
        prop_assert_eq!(&p.payload, &q.payload);
    }

    /// Any consistent v4/v6 × TCP/UDP packet survives serialize → parse
    /// unchanged, with valid checksums on both sides.
    #[test]
    fn protocol_round_trip_mixed_packet(p in arb_mixed_packet()) {
        prop_assert!(p.ip_checksum_valid());
        prop_assert!(p.transport_checksum_valid());
        let bytes = p.to_bytes();
        let q = Packet::from_bytes(0.0, &bytes).unwrap();
        prop_assert_eq!(&p, &q);
        prop_assert!(q.transport_checksum_valid());
    }

    /// Trailer padding (an Ethernet driver padding short frames) never
    /// leaks into the payload or breaks checksum validation — the PR-9
    /// padding bug, generalized across versions and transports.
    #[test]
    fn protocol_trailer_padding_never_corrupts(
        p in arb_mixed_packet(),
        pad in 1usize..24,
        junk in any::<u8>(),
    ) {
        let mut bytes = p.to_bytes();
        bytes.extend(std::iter::repeat_n(junk, pad));
        let q = Packet::from_bytes(0.0, &bytes).unwrap();
        prop_assert_eq!(&p.payload, &q.payload);
        prop_assert!(q.transport_checksum_valid());
        prop_assert_eq!(q.wire_len(), p.wire_len());
    }

    /// A fragmented v4 datagram reassembles to the original packet
    /// regardless of fragment size.
    #[test]
    fn protocol_fragmentation_reassembles(
        payload in prop::collection::vec(any::<u8>(), 32..256),
        chunk in 8usize..64,
    ) {
        let ip = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 64);
        let mut tcp = TcpHeader::new(40000, 80, 1, 2);
        tcp.flags = TcpFlags::ACK;
        let p = Packet::new(0.0, ip, tcp, payload);
        let frags = fragment_datagram(&p.to_bytes(), chunk);
        let mut r = Reassembler::new();
        let mut done = None;
        for f in &frags {
            done = r.push(0.0, f);
        }
        let q = done.expect("all fragments delivered");
        prop_assert_eq!(&p.payload, &q.payload);
        prop_assert_eq!(p.tcp(), q.tcp());
        prop_assert!(q.transport_checksum_valid());
    }

    /// Corrupting the IHL nibble, total length or data offset of a valid
    /// packet never panics the parser, and whatever parses re-serializes
    /// without panicking.
    #[test]
    fn protocol_corrupt_length_fields_never_panic(
        p in arb_packet(),
        field in 0usize..3,
        value in any::<u8>(),
    ) {
        let mut bytes = p.to_bytes();
        match field {
            0 => bytes[0] = (bytes[0] & 0xf0) | (value & 0x0f), // IHL
            1 => bytes[2] = value,                              // total_length high byte
            _ => bytes[32] = (value & 0xf0) | (bytes[32] & 0x0f), // data offset
        }
        if let Ok(q) = Packet::from_bytes(0.0, &bytes) {
            let _ = q.to_bytes();
        }
    }

    /// Freshly built packets always carry valid checksums and consistent
    /// length fields.
    #[test]
    fn new_packets_are_well_formed(p in arb_packet()) {
        prop_assert!(p.ip_checksum_valid());
        prop_assert!(p.tcp_checksum_valid());
        prop_assert!(p.ipv4().ihl_consistent());
        prop_assert!(p.tcp().data_offset_consistent());
        prop_assert_eq!(p.ipv4().total_length as usize, p.wire_len());
    }

    /// Flipping any single byte of the fixed TCP header or the payload
    /// invalidates the TCP checksum. (The option region is excluded: bytes
    /// in end-of-list padding are not semantically part of the header, so a
    /// lenient parse + re-serialize legitimately canonicalizes them away.
    /// The checksum field itself is excluded for the obvious reason.)
    #[test]
    fn checksum_detects_single_byte_corruption(p in arb_packet(), which in 0usize..1000) {
        let ip_len = p.ip.header_len_bytes();
        let tcp_hdr_len = p.tcp().header_len_bytes();
        let seg_len = p.wire_len() - ip_len;
        let mut bytes = p.to_bytes();
        // Candidates: fixed header minus checksum bytes (16..18), plus payload.
        let candidates: Vec<usize> = (0..16)
            .chain(18..20)
            .chain(tcp_hdr_len..seg_len)
            .collect();
        let off = ip_len + candidates[which % candidates.len()];
        bytes[off] ^= 0x5a;
        let q = Packet::from_bytes(0.0, &bytes).unwrap();
        prop_assert!(!q.tcp_checksum_valid());
    }

    /// The parser never panics on arbitrary bytes.
    #[test]
    fn parser_never_panics(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = Packet::from_bytes(0.0, &data);
    }

    /// Neither does the reassembler.
    #[test]
    fn reassembler_never_panics(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..80), 0..8),
    ) {
        let mut r = Reassembler::with_limits(4, 1.0);
        for (i, rec) in records.iter().enumerate() {
            let _ = r.push(i as f64 * 0.7, rec);
        }
    }

    /// Arbitrary bytes through the option parser never panic and always
    /// terminate.
    #[test]
    fn option_parser_never_panics(data in prop::collection::vec(any::<u8>(), 0..60)) {
        let _ = wire::parse_tcp_options(&data);
    }

    /// The shard hash is symmetric: both directions of any tuple produce
    /// the same canonical key, the same RSS hash and the same shard — the
    /// invariant that lets an RSS-partitioned front end keep each flow on
    /// one worker. Checked across v4/v6 and TCP/UDP.
    #[test]
    fn shard_hash_is_direction_symmetric(
        p in arb_mixed_packet(),
        shards in 1usize..12,
    ) {
        // Build the reverse-direction packet by swapping addresses/ports.
        let rev = {
            let mut q = p.clone();
            match (&mut q.ip, &p.ip) {
                (net_packet::IpHeader::V4(qh), net_packet::IpHeader::V4(ph)) => {
                    qh.src = ph.dst;
                    qh.dst = ph.src;
                }
                (net_packet::IpHeader::V6(qh), net_packet::IpHeader::V6(ph)) => {
                    qh.src = ph.dst;
                    qh.dst = ph.src;
                }
                _ => unreachable!("same packet, same version"),
            }
            match &mut q.transport {
                net_packet::Transport::Tcp(t) => {
                    std::mem::swap(&mut t.src_port, &mut t.dst_port)
                }
                net_packet::Transport::Udp(u) => {
                    std::mem::swap(&mut u.src_port, &mut u.dst_port)
                }
            }
            q
        };
        let (a, b) = (net_packet::CanonicalKey::of(&p), net_packet::CanonicalKey::of(&rev));
        prop_assert_eq!(a, b);
        prop_assert_eq!(a.rss_hash(), b.rss_hash());
        prop_assert_eq!(a.shard_of(shards), b.shard_of(shards));
        prop_assert!(a.shard_of(shards) < shards);
    }

    /// pcap round trip preserves every packet.
    #[test]
    fn pcap_round_trip(pkts in prop::collection::vec(arb_mixed_packet(), 0..8)) {
        let mut buf = Vec::new();
        net_packet::pcap::write_pcap(&mut buf, &pkts).unwrap();
        let back = net_packet::pcap::read_pcap(&buf[..]).unwrap();
        prop_assert_eq!(pkts.len(), back.len());
        for (a, b) in pkts.iter().zip(&back) {
            prop_assert_eq!(&a.ip, &b.ip);
            prop_assert_eq!(&a.transport, &b.transport);
            prop_assert_eq!(&a.payload, &b.payload);
        }
    }
}
