//! The conntrack-style tracker and window validator.

use net_packet::{ipv4, Direction, IpHeader, Packet, TcpFlags, Transport};
use serde::{Deserialize, Serialize};

/// Master TCP connection states, following the alphabet of Linux
/// `nf_conntrack_proto_tcp` (the module the paper instruments), which views
/// the connection from the middle rather than from one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum TcpState {
    /// No connection tracked yet.
    None = 0,
    /// Original-direction SYN seen.
    SynSent = 1,
    /// Simultaneous open: SYNs seen in both directions.
    SynSent2 = 2,
    /// SYN-ACK seen from the responder.
    SynRecv = 3,
    /// Three-way handshake complete.
    Established = 4,
    /// First FIN seen.
    FinWait = 5,
    /// First FIN acknowledged; waiting for the second FIN.
    CloseWait = 6,
    /// Both FINs seen before either was acknowledged (simultaneous close).
    Closing = 7,
    /// Second FIN seen; waiting for its acknowledgment.
    LastAck = 8,
    /// Orderly close complete (both FINs acked).
    TimeWait = 9,
    /// Connection torn down (RST, or reuse after TimeWait).
    Close = 10,
}

impl TcpState {
    /// All states in index order.
    pub const ALL: [TcpState; 11] = [
        TcpState::None,
        TcpState::SynSent,
        TcpState::SynSent2,
        TcpState::SynRecv,
        TcpState::Established,
        TcpState::FinWait,
        TcpState::CloseWait,
        TcpState::Closing,
        TcpState::LastAck,
        TcpState::TimeWait,
        TcpState::Close,
    ];

    /// Short display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            TcpState::None => "NONE",
            TcpState::SynSent => "SYN_SENT",
            TcpState::SynSent2 => "SYN_SENT2",
            TcpState::SynRecv => "SYN_RECV",
            TcpState::Established => "ESTABLISHED",
            TcpState::FinWait => "FIN_WAIT",
            TcpState::CloseWait => "CLOSE_WAIT",
            TcpState::Closing => "CLOSING",
            TcpState::LastAck => "LAST_ACK",
            TcpState::TimeWait => "TIME_WAIT",
            TcpState::Close => "CLOSE",
        }
    }
}

impl std::fmt::Display for TcpState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The per-packet label CLAP trains its RNN on: the master state the
/// machine transitions to as a result of the packet, plus the subtle
/// in-/out-of-window verdict (paper §3.3(a), footnote 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StateLabel {
    pub state: TcpState,
    pub in_window: bool,
}

impl StateLabel {
    /// Index into the 22-class label space.
    pub fn class_index(self) -> usize {
        self.state as usize * 2 + usize::from(!self.in_window)
    }

    /// Inverse of [`class_index`](Self::class_index).
    pub fn from_class_index(idx: usize) -> StateLabel {
        let state = TcpState::ALL[(idx / 2).min(10)];
        StateLabel {
            state,
            in_window: idx.is_multiple_of(2),
        }
    }
}

impl std::fmt::Display for StateLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}",
            self.state,
            if self.in_window { "IN" } else { "OUT" }
        )
    }
}

/// Sequence-number comparison helpers (RFC 793 §3.3, mod-2^32 arithmetic).
#[inline]
fn seq_lte(a: u32, b: u32) -> bool {
    b.wrapping_sub(a) as i32 >= 0
}

/// Maximum plausible distance between an acknowledgment and the highest
/// sequence we have seen, mirroring conntrack's MAXACKWINDOW idea. Benign
/// acks trail the sender by at most a window; adversarial "Bad ACK Num"
/// values are (with overwhelming probability) far outside this range.
const MAX_ACK_LAG: u32 = 1 << 22; // 4 MiB

/// Presence bits for [`PeerState`]'s optional fields. Sequence and
/// timestamp values span the full `u32` range, so presence cannot be
/// encoded in-band with a sentinel; a flag byte keeps the struct at 20
/// bytes where three `Option<u32>`s would pad it to 32 — the tracker
/// lives in every flow-table slot, so at million-flow scale the padding
/// alone would cost tens of megabytes.
const HAS_ISN: u8 = 1;
const HAS_TS_RECENT: u8 = 1 << 1;
const HAS_FIN_SEQ: u8 = 1 << 2;

#[derive(Debug, Clone, Default)]
struct PeerState {
    /// Initial sequence number (first SYN seen from this direction).
    isn: u32,
    /// Next sequence expected from this direction (highest seg_end seen).
    seq_nxt: u32,
    /// Highest timestamp value seen from this direction (PAWS).
    ts_recent: u32,
    /// Sequence just past this direction's FIN, once one was accepted.
    fin_seq: u32,
    /// Last raw window advertised by this direction.
    window: u16,
    /// Window-scale shift negotiated by this direction (applies once both
    /// sides offered the option).
    wscale: u8,
    /// `HAS_*` presence bits for the three optional fields above.
    present: u8,
}

impl PeerState {
    fn isn(&self) -> Option<u32> {
        (self.present & HAS_ISN != 0).then_some(self.isn)
    }

    fn ts_recent(&self) -> Option<u32> {
        (self.present & HAS_TS_RECENT != 0).then_some(self.ts_recent)
    }

    fn fin_seq(&self) -> Option<u32> {
        (self.present & HAS_FIN_SEQ != 0).then_some(self.fin_seq)
    }
}

/// Middlebox-viewpoint TCP connection tracker.
///
/// Feed packets in capture order with their direction; each call returns the
/// 22-class [`StateLabel`]. The tracker is deliberately *rigorous* — it
/// validates checksums, header-structure consistency and sequence windows
/// like an endhost — because CLAP's labels must reflect what the protocol
/// actually does with a packet, not what a lenient DPI believes.
#[derive(Debug, Clone)]
pub struct TcpTracker {
    state: TcpState,
    /// Direction of the first SYN (conntrack's "original" direction).
    orig: Option<Direction>,
    /// Direction that sent the first FIN.
    fin_dir: Option<Direction>,
    peers: [PeerState; 2],
    /// Whether window scaling is active (both sides offered it).
    wscale_ok: bool,
    packets_seen: usize,
}

impl Default for TcpTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl TcpTracker {
    pub fn new() -> Self {
        TcpTracker {
            state: TcpState::None,
            orig: None,
            fin_dir: None,
            peers: [PeerState::default(), PeerState::default()],
            wscale_ok: false,
            packets_seen: 0,
        }
    }

    /// Current master state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Number of packets processed.
    pub fn packets_seen(&self) -> usize {
        self.packets_seen
    }

    /// Structural acceptability: would a rigorous endhost even parse this
    /// packet? Checks checksums, version, header-length and datagram-length
    /// consistency and (for TCP) illegal flag combinations. Unacceptable
    /// packets are dropped without any state change — precisely the
    /// discrepancy evasion attacks exploit against lenient DPIs.
    pub fn segment_acceptable(p: &Packet) -> bool {
        let ip_ok = match &p.ip {
            IpHeader::V4(h) => h.version == 4 && h.ihl_consistent(),
            // v6 has no IHL; the analogous structural lie is a malformed
            // extension chain (misplaced Hop-by-Hop, lying hdr_ext_len).
            IpHeader::V6(h) => h.version == 6 && !h.ext_chain_malformed(),
        };
        let transport_ok = match &p.transport {
            Transport::Tcp(t) => {
                let f = t.flags;
                t.data_offset_consistent()
                    && f.0 != 0 // null scan
                    && !(f.contains(TcpFlags::SYN) && f.contains(TcpFlags::FIN))
                    && !(f.contains(TcpFlags::SYN) && f.contains(TcpFlags::RST))
            }
            Transport::Udp(u) => u.length_consistent(p.payload.len()),
        };
        ip_ok
            && p.ip.total_length_field() == p.wire_len()
            && transport_ok
            && p.ip_checksum_valid()
            && p.transport_checksum_valid()
    }

    fn scaled_window(&self, dir: Direction) -> u32 {
        let ps = &self.peers[dir.index()];
        let shift = if self.wscale_ok { ps.wscale.min(14) } else { 0 };
        u32::from(ps.window) << shift
    }

    /// Sequence acceptance: does the segment overlap the receiver's window?
    /// A one-byte grace below `rcv_nxt` admits keepalive probes.
    fn seq_ok(&self, p: &Packet, dir: Direction) -> bool {
        let ps = &self.peers[dir.index()];
        let syn = p.tcp().flags.contains(TcpFlags::SYN);
        if self.state == TcpState::None {
            // Nothing tracked: only an opening SYN "belongs".
            return syn && !p.tcp().flags.contains(TcpFlags::ACK);
        }
        if matches!(self.state, TcpState::TimeWait | TcpState::Close)
            && syn
            && !p.tcp().flags.contains(TcpFlags::ACK)
        {
            // Connection reuse: a fresh SYN after close starts over, so the
            // old sequence space does not constrain it.
            return true;
        }
        if ps.isn().is_none() {
            // First packet we see from this direction mid-connection
            // (e.g. the responder's SYN-ACK): nothing to violate yet.
            return true;
        }
        let rcv_nxt = ps.seq_nxt;
        let rwin = self.scaled_window(dir.flip()).max(1);
        let seg_seq = p.tcp().seq;
        let seg_end = seg_seq.wrapping_add(p.seq_len());
        let ok_low = seq_lte(rcv_nxt.wrapping_sub(1), seg_end);
        let ok_high = seq_lte(seg_seq, rcv_nxt.wrapping_add(rwin));
        ok_low && ok_high
    }

    /// Acknowledgment plausibility: the ack must not exceed what the other
    /// side has sent, nor trail it by more than `MAX_ACK_LAG`.
    fn ack_ok(&self, p: &Packet, dir: Direction) -> bool {
        if !p.tcp().flags.contains(TcpFlags::ACK) {
            return true;
        }
        let other = &self.peers[dir.flip().index()];
        if other.isn().is_none() {
            // Acking a direction we have never seen: cannot belong
            // (e.g. a SYN-ACK injected before any SYN).
            return self.state == TcpState::None;
        }
        let lag = other.seq_nxt.wrapping_sub(p.tcp().ack);
        (lag as i32) >= 0 && lag <= MAX_ACK_LAG
    }

    /// PAWS-style timestamp monotonicity for this direction.
    fn ts_ok(&self, p: &Packet, dir: Direction) -> bool {
        let Some((tsval, _)) = p.tcp().timestamps() else {
            return true;
        };
        match self.peers[dir.index()].ts_recent() {
            Some(recent) => seq_lte(recent, tsval),
            Option::None => true,
        }
    }

    fn acks_fin_of(&self, p: &Packet, fin_owner: Direction) -> bool {
        match self.peers[fin_owner.index()].fin_seq() {
            Some(fs) => p.tcp().flags.contains(TcpFlags::ACK) && seq_lte(fs, p.tcp().ack),
            Option::None => false,
        }
    }

    /// Processes one packet, returning its 22-class label.
    pub fn process(&mut self, p: &Packet, dir: Direction) -> StateLabel {
        use TcpState::*;
        self.packets_seen += 1;

        if !p.is_tcp() {
            // A non-TCP packet on a TCP-tracked flow (e.g. a corrupted
            // protocol field steering a UDP datagram into the tuple) can
            // never belong to the connection's sequence space.
            return StateLabel {
                state: self.state,
                in_window: false,
            };
        }

        if !Self::segment_acceptable(p) {
            // A rigorous endhost drops the packet: no transition, and by
            // definition the packet does not belong in the window.
            return StateLabel {
                state: self.state,
                in_window: false,
            };
        }

        let f = p.tcp().flags;
        let syn = f.contains(TcpFlags::SYN);
        let ack = f.contains(TcpFlags::ACK);
        let fin = f.contains(TcpFlags::FIN);
        let rst = f.contains(TcpFlags::RST);

        let seq_ok = self.seq_ok(p, dir);
        let ack_ok = self.ack_ok(p, dir);
        let ts_ok = self.ts_ok(p, dir);
        let in_window = seq_ok && ack_ok && ts_ok;
        // A segment only advances the machine when it belongs.
        let accept = in_window;

        let next = match self.state {
            None | Close | TimeWait if syn && !ack && accept => {
                // Open (or reopen after close/time-wait): reset everything.
                let fresh_orig = dir;
                *self = TcpTracker::new();
                self.packets_seen = 1; // keep this packet counted
                self.orig = Some(fresh_orig);
                SynSent
            }
            None | Close => self.state,
            SynSent => {
                if rst && accept {
                    Close
                } else if syn && ack && accept && Some(dir) != self.orig {
                    SynRecv
                } else if syn && !ack && accept && Some(dir) != self.orig {
                    SynSent2
                } else {
                    SynSent
                }
            }
            SynSent2 => {
                if rst && accept {
                    Close
                } else if syn && ack && accept {
                    SynRecv
                } else {
                    SynSent2
                }
            }
            SynRecv => {
                if rst && accept {
                    Close
                } else if ack && !syn && !fin && accept && Some(dir) == self.orig {
                    Established
                } else if fin && accept {
                    // FIN straight out of the handshake (rare but legal).
                    self.fin_dir = Some(dir);
                    FinWait
                } else {
                    SynRecv
                }
            }
            Established => {
                if rst && accept {
                    Close
                } else if fin && accept {
                    self.fin_dir = Some(dir);
                    FinWait
                } else {
                    Established
                }
            }
            FinWait => {
                let fin_owner = self.fin_dir.unwrap_or(Direction::ClientToServer);
                if rst && accept {
                    Close
                } else if fin && accept && dir != fin_owner {
                    Closing
                } else if accept && dir != fin_owner && self.acks_fin_of(p, fin_owner) {
                    CloseWait
                } else {
                    FinWait
                }
            }
            CloseWait => {
                let fin_owner = self.fin_dir.unwrap_or(Direction::ClientToServer);
                if rst && accept {
                    Close
                } else if fin && accept && dir != fin_owner {
                    LastAck
                } else {
                    CloseWait
                }
            }
            Closing => {
                let second_fin_owner = self.fin_dir.unwrap_or(Direction::ClientToServer).flip();
                if rst && accept {
                    Close
                } else if accept && self.acks_fin_of(p, second_fin_owner) {
                    TimeWait
                } else {
                    Closing
                }
            }
            LastAck => {
                let second_fin_owner = self.fin_dir.unwrap_or(Direction::ClientToServer).flip();
                if rst && accept {
                    Close
                } else if accept && dir != second_fin_owner && self.acks_fin_of(p, second_fin_owner)
                {
                    TimeWait
                } else {
                    LastAck
                }
            }
            TimeWait => {
                if rst && accept {
                    Close
                } else {
                    TimeWait
                }
            }
        };
        self.state = next;

        if accept {
            self.update_peer(p, dir, syn, fin);
        }

        StateLabel {
            state: self.state,
            in_window,
        }
    }

    fn update_peer(&mut self, p: &Packet, dir: Direction, syn: bool, fin: bool) {
        let seg_end = p.tcp().seq.wrapping_add(p.seq_len());
        // Window scaling becomes active only when both sides offer it.
        if syn {
            if let Some(ws) = p.tcp().window_scale() {
                self.peers[dir.index()].wscale = ws;
                let other_offered = self.peers[dir.flip().index()].wscale > 0
                    || self.peers[dir.flip().index()].isn().is_none();
                // Activate tentatively; corrected when the other SYN arrives.
                self.wscale_ok = other_offered;
            }
        }
        let ps = &mut self.peers[dir.index()];
        if syn && ps.isn().is_none() {
            ps.isn = p.tcp().seq;
            ps.present |= HAS_ISN;
            ps.seq_nxt = seg_end;
        } else if seq_lte(ps.seq_nxt, seg_end) {
            ps.seq_nxt = seg_end;
        }
        ps.window = p.tcp().window;
        if let Some((tsval, _)) = p.tcp().timestamps() {
            match ps.ts_recent() {
                Some(r) if seq_lte(tsval, r) => {}
                _ => {
                    ps.ts_recent = tsval;
                    ps.present |= HAS_TS_RECENT;
                }
            }
        }
        if fin && ps.fin_seq().is_none() {
            ps.fin_seq = seg_end;
            ps.present |= HAS_FIN_SEQ;
        }
    }
}

/// Idle-only lifecycle tracker for UDP flows.
///
/// UDP has no state machine: conntrack considers a UDP flow "established"
/// from its first datagram and tears it down purely by idle timeout. The
/// label alphabet is shared with TCP, so every datagram maps to
/// `Established`, and the in-window bit carries the only per-packet signal
/// UDP offers: whether the datagram is structurally plausible (length field
/// agrees with the payload, checksum validates, IP header is consistent).
/// There is never a transition to `Close`/`TimeWait` — eviction is the flow
/// table's idle policy, not the tracker's.
#[derive(Debug, Clone, Default)]
pub struct UdpTracker {
    packets_seen: usize,
}

impl UdpTracker {
    pub fn new() -> Self {
        UdpTracker::default()
    }

    /// Number of packets processed.
    pub fn packets_seen(&self) -> usize {
        self.packets_seen
    }

    /// Processes one datagram. A TCP segment arriving on a UDP-tracked flow
    /// is a transport mismatch and never "belongs".
    pub fn process(&mut self, p: &Packet, _dir: Direction) -> StateLabel {
        self.packets_seen += 1;
        StateLabel {
            state: TcpState::Established,
            in_window: p.is_udp() && TcpTracker::segment_acceptable(p),
        }
    }
}

/// Fallback tracker for flows whose protocol is neither TCP nor UDP.
///
/// Unreachable from parsed captures today (the wire parser only admits
/// TCP and UDP), but [`FlowTracker::for_proto`] is total over the protocol
/// byte, and a flow keyed by a corrupted protocol field must still label
/// every packet. Mirrors the UDP idle-only lifecycle with the structural
/// checks of whatever transport the packet actually carries.
#[derive(Debug, Clone, Default)]
pub struct GenericTracker {
    packets_seen: usize,
}

impl GenericTracker {
    pub fn new() -> Self {
        GenericTracker::default()
    }

    /// Number of packets processed.
    pub fn packets_seen(&self) -> usize {
        self.packets_seen
    }

    pub fn process(&mut self, p: &Packet, _dir: Direction) -> StateLabel {
        self.packets_seen += 1;
        StateLabel {
            state: TcpState::Established,
            in_window: TcpTracker::segment_acceptable(p),
        }
    }
}

/// Per-flow tracker dispatching on the flow's transport protocol.
///
/// The flow table stores one of these per slot; [`FlowTracker::for_proto`]
/// picks the lifecycle from the protocol byte carried in the flow key
/// (which is derived from the packet's *structural* transport, not the
/// corruptible IP protocol field).
#[derive(Debug, Clone)]
pub enum FlowTracker {
    Tcp(TcpTracker),
    Udp(UdpTracker),
    Generic(GenericTracker),
}

impl FlowTracker {
    /// Tracker for the given IP protocol number.
    pub fn for_proto(proto: u8) -> Self {
        match proto {
            ipv4::PROTO_TCP => FlowTracker::Tcp(TcpTracker::new()),
            ipv4::PROTO_UDP => FlowTracker::Udp(UdpTracker::new()),
            _ => FlowTracker::Generic(GenericTracker::new()),
        }
    }

    /// Tracker matching the packet's structural transport.
    pub fn for_packet(p: &Packet) -> Self {
        Self::for_proto(p.transport.protocol_number())
    }

    /// Processes one packet, returning its 22-class label.
    pub fn process(&mut self, p: &Packet, dir: Direction) -> StateLabel {
        match self {
            FlowTracker::Tcp(t) => t.process(p, dir),
            FlowTracker::Udp(t) => t.process(p, dir),
            FlowTracker::Generic(t) => t.process(p, dir),
        }
    }

    /// The TCP master state, when this flow has one. `None` for UDP and
    /// generic flows, whose idle-only lifecycle has no teardown states —
    /// callers watching for `Close`/`TimeWait` to evict a flow must fall
    /// back to idle timeouts for those.
    pub fn tcp_state(&self) -> Option<TcpState> {
        match self {
            FlowTracker::Tcp(t) => Some(t.state()),
            FlowTracker::Udp(_) | FlowTracker::Generic(_) => None,
        }
    }

    /// Number of packets processed.
    pub fn packets_seen(&self) -> usize {
        match self {
            FlowTracker::Tcp(t) => t.packets_seen(),
            FlowTracker::Udp(t) => t.packets_seen(),
            FlowTracker::Generic(t) => t.packets_seen(),
        }
    }
}

/// Labels every packet of a connection with a fresh tracker chosen by the
/// flow key's transport protocol.
pub fn label_connection(conn: &net_packet::Connection) -> Vec<StateLabel> {
    let mut tracker = FlowTracker::for_proto(conn.key.proto);
    conn.packets
        .iter()
        .enumerate()
        .map(|(i, p)| tracker.process(p, conn.direction(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_packet::{Endpoint, FlowKey, Ipv4Header, TcpHeader, TcpOption};
    use std::net::Ipv4Addr;

    const CLIENT_ISN: u32 = 1_000_000;
    const SERVER_ISN: u32 = 5_000_000;

    fn key() -> FlowKey {
        FlowKey::new(
            Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 40000),
            Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 443),
        )
    }

    fn v4(a: std::net::IpAddr) -> Ipv4Addr {
        match a {
            std::net::IpAddr::V4(v) => v,
            std::net::IpAddr::V6(_) => unreachable!("test key is IPv4"),
        }
    }

    struct Builder {
        key: FlowKey,
        tracker: TcpTracker,
    }

    impl Builder {
        fn new() -> Self {
            Builder {
                key: key(),
                tracker: TcpTracker::new(),
            }
        }

        /// Headers for a segment in `dir`, for tests that tweak options or
        /// fields before building the packet.
        fn parts(
            &self,
            dir: Direction,
            flags: TcpFlags,
            seq: u32,
            ackn: u32,
        ) -> (Ipv4Header, TcpHeader) {
            let (src, dst) = match dir {
                Direction::ClientToServer => (self.key.client, self.key.server),
                Direction::ServerToClient => (self.key.server, self.key.client),
            };
            let ip = Ipv4Header::new(v4(src.addr), v4(dst.addr), 64);
            let mut tcp = TcpHeader::new(src.port, dst.port, seq, ackn);
            tcp.flags = flags;
            (ip, tcp)
        }

        fn packet(
            &self,
            dir: Direction,
            flags: TcpFlags,
            seq: u32,
            ackn: u32,
            payload: &[u8],
        ) -> Packet {
            let (ip, tcp) = self.parts(dir, flags, seq, ackn);
            Packet::new(0.0, ip, tcp, payload.to_vec())
        }

        fn feed(
            &mut self,
            dir: Direction,
            flags: TcpFlags,
            seq: u32,
            ackn: u32,
            payload: &[u8],
        ) -> StateLabel {
            let p = self.packet(dir, flags, seq, ackn, payload);
            self.tracker.process(&p, dir)
        }

        /// Runs the three-way handshake; leaves the tracker ESTABLISHED.
        fn handshake(&mut self) {
            use Direction::*;
            let l1 = self.feed(ClientToServer, TcpFlags::SYN, CLIENT_ISN, 0, &[]);
            assert_eq!(
                l1,
                StateLabel {
                    state: TcpState::SynSent,
                    in_window: true
                }
            );
            let l2 = self.feed(
                ServerToClient,
                TcpFlags::SYN | TcpFlags::ACK,
                SERVER_ISN,
                CLIENT_ISN + 1,
                &[],
            );
            assert_eq!(
                l2,
                StateLabel {
                    state: TcpState::SynRecv,
                    in_window: true
                }
            );
            let l3 = self.feed(
                ClientToServer,
                TcpFlags::ACK,
                CLIENT_ISN + 1,
                SERVER_ISN + 1,
                &[],
            );
            assert_eq!(
                l3,
                StateLabel {
                    state: TcpState::Established,
                    in_window: true
                }
            );
        }
    }

    use Direction::{ClientToServer as C2S, ServerToClient as S2C};

    #[test]
    fn class_index_round_trip() {
        for idx in 0..crate::NUM_CLASSES {
            assert_eq!(StateLabel::from_class_index(idx).class_index(), idx);
        }
    }

    #[test]
    fn handshake_reaches_established() {
        let mut b = Builder::new();
        b.handshake();
        assert_eq!(b.tracker.state(), TcpState::Established);
    }

    #[test]
    fn data_transfer_stays_established_in_window() {
        let mut b = Builder::new();
        b.handshake();
        let l = b.feed(
            C2S,
            TcpFlags::ACK | TcpFlags::PSH,
            CLIENT_ISN + 1,
            SERVER_ISN + 1,
            b"GET /",
        );
        assert_eq!(
            l,
            StateLabel {
                state: TcpState::Established,
                in_window: true
            }
        );
        let l = b.feed(S2C, TcpFlags::ACK, SERVER_ISN + 1, CLIENT_ISN + 6, &[]);
        assert_eq!(
            l,
            StateLabel {
                state: TcpState::Established,
                in_window: true
            }
        );
        let l = b.feed(
            S2C,
            TcpFlags::ACK | TcpFlags::PSH,
            SERVER_ISN + 1,
            CLIENT_ISN + 6,
            b"200 OK",
        );
        assert_eq!(
            l,
            StateLabel {
                state: TcpState::Established,
                in_window: true
            }
        );
    }

    #[test]
    fn orderly_close_walks_fin_states() {
        let mut b = Builder::new();
        b.handshake();
        // Client FIN.
        let l = b.feed(
            C2S,
            TcpFlags::FIN | TcpFlags::ACK,
            CLIENT_ISN + 1,
            SERVER_ISN + 1,
            &[],
        );
        assert_eq!(l.state, TcpState::FinWait);
        // Server acks the FIN.
        let l = b.feed(S2C, TcpFlags::ACK, SERVER_ISN + 1, CLIENT_ISN + 2, &[]);
        assert_eq!(l.state, TcpState::CloseWait);
        // Server FIN.
        let l = b.feed(
            S2C,
            TcpFlags::FIN | TcpFlags::ACK,
            SERVER_ISN + 1,
            CLIENT_ISN + 2,
            &[],
        );
        assert_eq!(l.state, TcpState::LastAck);
        // Client acks.
        let l = b.feed(C2S, TcpFlags::ACK, CLIENT_ISN + 2, SERVER_ISN + 2, &[]);
        assert_eq!(
            l,
            StateLabel {
                state: TcpState::TimeWait,
                in_window: true
            }
        );
    }

    #[test]
    fn simultaneous_close_goes_through_closing() {
        let mut b = Builder::new();
        b.handshake();
        let l = b.feed(
            C2S,
            TcpFlags::FIN | TcpFlags::ACK,
            CLIENT_ISN + 1,
            SERVER_ISN + 1,
            &[],
        );
        assert_eq!(l.state, TcpState::FinWait);
        // Server FIN before acking the client's FIN.
        let l = b.feed(
            S2C,
            TcpFlags::FIN | TcpFlags::ACK,
            SERVER_ISN + 1,
            CLIENT_ISN + 1,
            &[],
        );
        assert_eq!(l.state, TcpState::Closing);
        // Ack covering the server's FIN completes the close.
        let l = b.feed(C2S, TcpFlags::ACK, CLIENT_ISN + 2, SERVER_ISN + 2, &[]);
        assert_eq!(l.state, TcpState::TimeWait);
    }

    #[test]
    fn valid_rst_closes() {
        let mut b = Builder::new();
        b.handshake();
        let l = b.feed(S2C, TcpFlags::RST, SERVER_ISN + 1, 0, &[]);
        assert_eq!(
            l,
            StateLabel {
                state: TcpState::Close,
                in_window: true
            }
        );
    }

    #[test]
    fn bad_checksum_rst_is_dropped_and_out_of_window() {
        // The paper's motivating example: Bad-Checksum-RST after handshake.
        let mut b = Builder::new();
        b.handshake();
        let mut p = b.packet(C2S, TcpFlags::RST, CLIENT_ISN + 1, 0, &[]);
        p.tcp_mut().checksum ^= 0x0bad;
        let l = b.tracker.process(&p, C2S);
        assert_eq!(
            l,
            StateLabel {
                state: TcpState::Established,
                in_window: false
            }
        );
        assert_eq!(b.tracker.state(), TcpState::Established);
    }

    #[test]
    fn out_of_window_rst_does_not_close() {
        let mut b = Builder::new();
        b.handshake();
        let l = b.feed(
            C2S,
            TcpFlags::RST,
            CLIENT_ISN.wrapping_sub(100_000_000),
            0,
            &[],
        );
        assert_eq!(
            l,
            StateLabel {
                state: TcpState::Established,
                in_window: false
            }
        );
    }

    #[test]
    fn bad_ack_data_packet_is_out_of_window() {
        let mut b = Builder::new();
        b.handshake();
        let l = b.feed(
            C2S,
            TcpFlags::ACK | TcpFlags::PSH,
            CLIENT_ISN + 1,
            0xdead_0000,
            b"x",
        );
        assert!(!l.in_window);
        assert_eq!(l.state, TcpState::Established);
    }

    #[test]
    fn underflow_seq_is_out_of_window() {
        let mut b = Builder::new();
        b.handshake();
        let l = b.feed(
            C2S,
            TcpFlags::ACK | TcpFlags::PSH,
            CLIENT_ISN.wrapping_sub(50_000_000),
            SERVER_ISN + 1,
            b"x",
        );
        assert!(!l.in_window);
    }

    #[test]
    fn retransmission_is_in_window() {
        let mut b = Builder::new();
        b.handshake();
        let l = b.feed(
            C2S,
            TcpFlags::ACK | TcpFlags::PSH,
            CLIENT_ISN + 1,
            SERVER_ISN + 1,
            b"hello",
        );
        assert!(l.in_window);
        // Exact retransmission of the same segment.
        let l = b.feed(
            C2S,
            TcpFlags::ACK | TcpFlags::PSH,
            CLIENT_ISN + 1,
            SERVER_ISN + 1,
            b"hello",
        );
        assert!(l.in_window);
        assert_eq!(l.state, TcpState::Established);
    }

    #[test]
    fn paws_rejects_old_timestamp() {
        let mut b = Builder::new();
        // Handshake with timestamps.
        let (ip, mut tcp) = b.parts(C2S, TcpFlags::SYN, CLIENT_ISN, 0);
        tcp.options.push(TcpOption::Timestamps {
            tsval: 1000,
            tsecr: 0,
        });
        let p = Packet::new(0.0, ip, tcp, vec![]);
        assert!(b.tracker.process(&p, C2S).in_window);
        let (ip, mut tcp) = b.parts(
            S2C,
            TcpFlags::SYN | TcpFlags::ACK,
            SERVER_ISN,
            CLIENT_ISN + 1,
        );
        tcp.options.push(TcpOption::Timestamps {
            tsval: 2000,
            tsecr: 1000,
        });
        let p = Packet::new(0.0, ip, tcp, vec![]);
        assert!(b.tracker.process(&p, S2C).in_window);
        let (ip, mut tcp) = b.parts(C2S, TcpFlags::ACK, CLIENT_ISN + 1, SERVER_ISN + 1);
        tcp.options.push(TcpOption::Timestamps {
            tsval: 1001,
            tsecr: 2000,
        });
        let p = Packet::new(0.0, ip, tcp, vec![]);
        assert!(b.tracker.process(&p, C2S).in_window);
        assert_eq!(b.tracker.state(), TcpState::Established);
        // RST with a wildly old timestamp: PAWS says it does not belong.
        let (ip, mut tcp) = b.parts(C2S, TcpFlags::RST, CLIENT_ISN + 1, 0);
        tcp.options
            .push(TcpOption::Timestamps { tsval: 3, tsecr: 0 });
        let p = Packet::new(0.0, ip, tcp, vec![]);
        let l = b.tracker.process(&p, C2S);
        assert!(!l.in_window);
        assert_eq!(b.tracker.state(), TcpState::Established);
    }

    #[test]
    fn syn_fin_combo_is_structurally_dropped() {
        let mut b = Builder::new();
        let l = b.feed(C2S, TcpFlags::SYN | TcpFlags::FIN, CLIENT_ISN, 0, &[]);
        assert_eq!(
            l,
            StateLabel {
                state: TcpState::None,
                in_window: false
            }
        );
    }

    #[test]
    fn null_flags_dropped() {
        let mut b = Builder::new();
        b.handshake();
        let l = b.feed(C2S, TcpFlags::empty(), CLIENT_ISN + 1, 0, &[]);
        assert!(!l.in_window);
        assert_eq!(l.state, TcpState::Established);
    }

    #[test]
    fn mid_connection_syn_is_out_of_window() {
        let mut b = Builder::new();
        b.handshake();
        let l = b.feed(C2S, TcpFlags::SYN, CLIENT_ISN + 77777, 0, &[]);
        assert_eq!(l.state, TcpState::Established);
        // A fresh SYN mid-connection is either an in-window oddity or an
        // out-of-window injection depending on seq; this one is beyond the
        // server's advertised window.
        // (seq CLIENT_ISN+77777 vs window 65535 -> out)
        assert!(!l.in_window);
    }

    #[test]
    fn reopen_after_timewait() {
        let mut b = Builder::new();
        b.handshake();
        b.feed(
            C2S,
            TcpFlags::FIN | TcpFlags::ACK,
            CLIENT_ISN + 1,
            SERVER_ISN + 1,
            &[],
        );
        b.feed(S2C, TcpFlags::ACK, SERVER_ISN + 1, CLIENT_ISN + 2, &[]);
        b.feed(
            S2C,
            TcpFlags::FIN | TcpFlags::ACK,
            SERVER_ISN + 1,
            CLIENT_ISN + 2,
            &[],
        );
        let l = b.feed(C2S, TcpFlags::ACK, CLIENT_ISN + 2, SERVER_ISN + 2, &[]);
        assert_eq!(l.state, TcpState::TimeWait);
        // New SYN reopens the connection.
        let l = b.feed(C2S, TcpFlags::SYN, 42_000_000, 0, &[]);
        assert_eq!(
            l,
            StateLabel {
                state: TcpState::SynSent,
                in_window: true
            }
        );
        assert_eq!(b.tracker.state(), TcpState::SynSent);
    }

    #[test]
    fn simultaneous_open() {
        let mut b = Builder::new();
        let l = b.feed(C2S, TcpFlags::SYN, CLIENT_ISN, 0, &[]);
        assert_eq!(l.state, TcpState::SynSent);
        let l = b.feed(S2C, TcpFlags::SYN, SERVER_ISN, 0, &[]);
        assert_eq!(l.state, TcpState::SynSent2);
        let l = b.feed(
            S2C,
            TcpFlags::SYN | TcpFlags::ACK,
            SERVER_ISN,
            CLIENT_ISN + 1,
            &[],
        );
        assert_eq!(l.state, TcpState::SynRecv);
    }

    #[test]
    fn data_before_any_syn_does_not_create_state() {
        let mut b = Builder::new();
        let l = b.feed(C2S, TcpFlags::ACK | TcpFlags::PSH, 500, 600, b"stray");
        assert_eq!(
            l,
            StateLabel {
                state: TcpState::None,
                in_window: false
            }
        );
    }

    #[test]
    fn window_scaling_applies_after_negotiation() {
        let mut b = Builder::new();
        // SYN with wscale 7 on both sides, tiny raw window afterwards.
        let (ip, mut tcp) = b.parts(C2S, TcpFlags::SYN, CLIENT_ISN, 0);
        tcp.options.push(TcpOption::WindowScale(7));
        let p = Packet::new(0.0, ip, tcp, vec![]);
        b.tracker.process(&p, C2S);
        let (ip, mut tcp) = b.parts(
            S2C,
            TcpFlags::SYN | TcpFlags::ACK,
            SERVER_ISN,
            CLIENT_ISN + 1,
        );
        tcp.options.push(TcpOption::WindowScale(7));
        tcp.window = 1000; // scaled: 128,000
        let p = Packet::new(0.0, ip, tcp, vec![]);
        b.tracker.process(&p, S2C);
        b.feed(C2S, TcpFlags::ACK, CLIENT_ISN + 1, SERVER_ISN + 1, &[]);
        // Data at rcv_nxt + 100,000 fits only thanks to scaling.
        let l = b.feed(
            C2S,
            TcpFlags::ACK,
            CLIENT_ISN + 1 + 100_000,
            SERVER_ISN + 1,
            b"z",
        );
        assert!(l.in_window);
    }

    #[test]
    fn protocol_udp_flow_is_idle_established() {
        use net_packet::UdpHeader;
        let mut t = FlowTracker::for_proto(ipv4::PROTO_UDP);
        let ip = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 64);
        let p = Packet::new_udp(0.0, ip, UdpHeader::new(5000, 53), b"q".to_vec());
        for _ in 0..3 {
            let l = t.process(&p, C2S);
            assert_eq!(
                l,
                StateLabel {
                    state: TcpState::Established,
                    in_window: true
                }
            );
        }
        // A lying length field makes the datagram implausible.
        let mut bad = p.clone();
        bad.udp_mut().length += 4;
        assert!(!t.process(&bad, C2S).in_window);
        // So does a corrupted checksum.
        let mut bad = p.clone();
        bad.udp_mut().checksum ^= 0x1111;
        assert!(!t.process(&bad, C2S).in_window);
        // Idle-only lifecycle: no TCP master state, never a teardown state.
        assert_eq!(t.tcp_state(), Option::None);
        assert_eq!(t.packets_seen(), 5);
    }

    #[test]
    fn protocol_v6_handshake_reaches_established() {
        use net_packet::Ipv6Header;
        use std::net::Ipv6Addr;
        let c = Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1);
        let s = Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2);
        let seg = |src: Ipv6Addr, dst: Ipv6Addr, sp, dp, flags: TcpFlags, seq, ack| {
            let mut tcp = TcpHeader::new(sp, dp, seq, ack);
            tcp.flags = flags;
            Packet::new_v6(0.0, Ipv6Header::new(src, dst, 64), tcp, vec![])
        };
        let mut t = TcpTracker::new();
        assert!(
            t.process(&seg(c, s, 40000, 443, TcpFlags::SYN, CLIENT_ISN, 0), C2S)
                .in_window
        );
        assert!(
            t.process(
                &seg(
                    s,
                    c,
                    443,
                    40000,
                    TcpFlags::SYN | TcpFlags::ACK,
                    SERVER_ISN,
                    CLIENT_ISN + 1
                ),
                S2C
            )
            .in_window
        );
        let l = t.process(
            &seg(
                c,
                s,
                40000,
                443,
                TcpFlags::ACK,
                CLIENT_ISN + 1,
                SERVER_ISN + 1,
            ),
            C2S,
        );
        assert_eq!(
            l,
            StateLabel {
                state: TcpState::Established,
                in_window: true
            }
        );
    }

    #[test]
    fn protocol_transport_mismatch_never_belongs() {
        // A UDP datagram steered onto a TCP-tracked flow (or vice versa)
        // is never in-window and never advances the machine.
        let mut b = Builder::new();
        b.handshake();
        let ip = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 64);
        let udp_p = Packet::new_udp(0.0, ip, net_packet::UdpHeader::new(40000, 443), vec![]);
        let l = b.tracker.process(&udp_p, C2S);
        assert_eq!(
            l,
            StateLabel {
                state: TcpState::Established,
                in_window: false
            }
        );
        let mut u = FlowTracker::for_proto(ipv4::PROTO_UDP);
        let tcp_p = b.packet(C2S, TcpFlags::ACK, 1, 1, &[]);
        assert!(!u.process(&tcp_p, C2S).in_window);
    }

    #[test]
    fn protocol_label_connection_dispatches_on_key_proto() {
        use net_packet::{Connection, UdpHeader};
        let key = FlowKey::new(
            Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 40000),
            Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 53),
        )
        .with_proto(ipv4::PROTO_UDP);
        let mut conn = Connection::new(key);
        let ip = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 64);
        conn.packets.push(Packet::new_udp(
            0.0,
            ip,
            UdpHeader::new(40000, 53),
            b"query".to_vec(),
        ));
        let labels = label_connection(&conn);
        assert_eq!(
            labels,
            vec![StateLabel {
                state: TcpState::Established,
                in_window: true
            }]
        );
    }

    #[test]
    fn labels_for_whole_connection() {
        use net_packet::Connection;
        let b = Builder::new();
        let mut conn = Connection::new(b.key);
        conn.packets
            .push(b.packet(C2S, TcpFlags::SYN, CLIENT_ISN, 0, &[]));
        conn.packets.push(b.packet(
            S2C,
            TcpFlags::SYN | TcpFlags::ACK,
            SERVER_ISN,
            CLIENT_ISN + 1,
            &[],
        ));
        conn.packets
            .push(b.packet(C2S, TcpFlags::ACK, CLIENT_ISN + 1, SERVER_ISN + 1, &[]));
        let labels = label_connection(&conn);
        assert_eq!(
            labels.iter().map(|l| l.state).collect::<Vec<_>>(),
            vec![TcpState::SynSent, TcpState::SynRecv, TcpState::Established]
        );
        assert!(labels.iter().all(|l| l.in_window));
    }
}
