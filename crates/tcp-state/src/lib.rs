//! Reference TCP connection tracker for label generation.
//!
//! The CLAP paper instruments Linux's netfilter `conntrack` subsystem and
//! replays benign traffic through it to harvest, for every packet, the pair
//! *(master TCP state after the packet, in-/out-of-window verdict)* — the
//! 11 × 2 = 22-class label that drives the inter-packet-context RNN
//! (paper §3.3(a), Table 5). This crate is that reference implementation,
//! built from scratch: a middlebox-viewpoint, bidirectional TCP state
//! machine in the style of `nf_conntrack_proto_tcp.c`, with
//!
//! * the 11 master states (conntrack's state alphabet, including the
//!   simultaneous-open `SynSent2` and the liveness states),
//! * sequence-window validation (a simplified `tcp_in_window`): segment
//!   sequence range against the receiver's expected window, acknowledgment
//!   plausibility, and PAWS-style timestamp monotonicity,
//! * endhost-fidelity checksum gating: packets with invalid IP/TCP checksums
//!   never advance the machine, exactly like a rigorous endpoint that drops
//!   them (this is the discrepancy many evasion attacks exploit).
//!
//! The tracker never panics on hostile input; every packet yields a label.

pub mod tracker;

pub use tracker::{
    label_connection, FlowTracker, GenericTracker, StateLabel, TcpState, TcpTracker, UdpTracker,
};

/// Number of master TCP states tracked.
pub const NUM_STATES: usize = 11;

/// Number of RNN label classes: each master state × {in-window, out-of-window}.
pub const NUM_CLASSES: usize = NUM_STATES * 2;
