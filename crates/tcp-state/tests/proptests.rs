//! Property-based tests for the reference TCP tracker.

use net_packet::{Endpoint, FlowKey, Ipv4Header, Packet, TcpFlags, TcpHeader};
use proptest::prelude::*;
use std::net::Ipv4Addr;
use tcp_state::{label_connection, TcpState, TcpTracker};

fn arb_segment() -> impl Strategy<Value = (bool, u16, u32, u32, u16, u8)> {
    // (direction c2s?, flags, seq, ack, window, payload_len)
    (
        any::<bool>(),
        0u16..=0x1ff,
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        0u8..=64,
    )
}

fn key() -> FlowKey {
    FlowKey::new(
        Endpoint::new(Ipv4Addr::new(10, 1, 0, 1), 40000),
        Endpoint::new(Ipv4Addr::new(10, 1, 0, 2), 443),
    )
}

fn make_packet(
    k: &FlowKey,
    c2s: bool,
    flags: u16,
    seq: u32,
    ack: u32,
    window: u16,
    plen: u8,
) -> Packet {
    let (src, dst) = if c2s {
        (k.client, k.server)
    } else {
        (k.server, k.client)
    };
    let ip = match (src.addr, dst.addr) {
        (std::net::IpAddr::V4(s), std::net::IpAddr::V4(d)) => Ipv4Header::new(s, d, 60),
        _ => unreachable!("test key is IPv4"),
    };
    let mut tcp = TcpHeader::new(src.port, dst.port, seq, ack);
    tcp.flags = TcpFlags(flags);
    tcp.window = window;
    Packet::new(0.0, ip, tcp, vec![0u8; plen as usize])
}

proptest! {
    /// The tracker never panics on arbitrary segment sequences, and its
    /// state index always stays within the 11-state alphabet.
    #[test]
    fn tracker_total_on_arbitrary_sequences(
        segs in prop::collection::vec(arb_segment(), 0..40)
    ) {
        let k = key();
        let mut tracker = TcpTracker::new();
        for (c2s, flags, seq, ack, window, plen) in segs {
            let p = make_packet(&k, c2s, flags, seq, ack, window, plen);
            let dir = if c2s {
                net_packet::Direction::ClientToServer
            } else {
                net_packet::Direction::ServerToClient
            };
            let label = tracker.process(&p, dir);
            prop_assert!(label.class_index() < tcp_state::NUM_CLASSES);
            prop_assert_eq!(label.state, tracker.state());
        }
    }

    /// Without any SYN, the tracker never leaves NONE.
    #[test]
    fn no_syn_no_connection(
        segs in prop::collection::vec(arb_segment(), 1..30)
    ) {
        let k = key();
        let mut tracker = TcpTracker::new();
        for (c2s, flags, seq, ack, window, plen) in segs {
            let flags = flags & !0x2; // strip SYN
            let p = make_packet(&k, c2s, flags, seq, ack, window, plen);
            let dir = if c2s {
                net_packet::Direction::ClientToServer
            } else {
                net_packet::Direction::ServerToClient
            };
            tracker.process(&p, dir);
            prop_assert_eq!(tracker.state(), TcpState::None);
        }
    }

    /// Corrupting the TCP checksum of any packet in a benign trace never
    /// changes the final state relative to dropping that packet entirely.
    #[test]
    fn checksum_corruption_equals_drop(conn_seed in 0u64..500, which in 0usize..100) {
        let conns = traffic_gen::dataset(conn_seed, 1);
        let conn = &conns[0];
        let idx = which % conn.len();

        // Trace A: packet `idx` has a corrupted checksum.
        let mut corrupted = conn.clone();
        corrupted.packets[idx].tcp_mut().checksum ^= 0x5a5a;
        let mut t1 = TcpTracker::new();
        for (i, p) in corrupted.packets.iter().enumerate() {
            t1.process(p, corrupted.direction(i));
        }

        // Trace B: packet `idx` never existed.
        let mut dropped = conn.clone();
        dropped.packets.remove(idx);
        let mut t2 = TcpTracker::new();
        for (i, p) in dropped.packets.iter().enumerate() {
            t2.process(p, dropped.direction(i));
        }

        prop_assert_eq!(t1.state(), t2.state());
    }

    /// Labels are deterministic: same trace, same labels.
    #[test]
    fn labeling_is_deterministic(seed in 0u64..300) {
        let conns = traffic_gen::dataset(seed, 1);
        let a = label_connection(&conns[0]);
        let b = label_connection(&conns[0]);
        prop_assert_eq!(a, b);
    }

    /// Benign generated connections always progress monotonically through
    /// the opening: the SynSent state is observed before Established.
    #[test]
    fn opening_order_is_respected(seed in 0u64..300) {
        let conns = traffic_gen::dataset(seed, 1);
        let labels = label_connection(&conns[0]);
        let first_est = labels.iter().position(|l| l.state == TcpState::Established);
        let first_syn = labels.iter().position(|l| l.state == TcpState::SynSent);
        if let (Some(e), Some(s)) = (first_est, first_syn) {
            prop_assert!(s < e, "SYN_SENT at {s} must precede ESTABLISHED at {e}");
        }
    }
}
