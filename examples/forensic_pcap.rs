//! Offline forensics on a pcap capture (§3.2: CLAP "can also be used as a
//! forensic tool to analyze traffic captures offline").
//!
//! Writes an attacked trace to a real libpcap file (openable in
//! Wireshark), reads it back, reassembles the connection and asks CLAP for
//! the most suspicious packets.
//!
//! ```text
//! cargo run --release --example forensic_pcap
//! ```

use clap_repro::clap_core::{Clap, ClapConfig, ProfileBuilder};
use clap_repro::dpi_attacks;
use clap_repro::net_packet::{pcap, Connection};
use clap_repro::traffic_gen;

fn main() {
    // Train a small detector.
    let benign = traffic_gen::dataset(77, 100);
    println!("training CLAP on {} benign connections…", benign.len());
    let (clap, _) = Clap::train(&benign, &ClapConfig::ci());

    // Simulate a capture containing an evasion attempt.
    let victims = traffic_gen::dataset(78, 10);
    let strategy = dpi_attacks::strategy_by_id("symtcp-gfw-rst-bad-timestamp").unwrap();
    let attacked = dpi_attacks::build_adversarial_set(strategy, &victims, 3);
    let case = &attacked[0];

    // Round-trip through an actual pcap file.
    let path = std::env::temp_dir().join("clap_forensics.pcap");
    let file = std::fs::File::create(&path).expect("create pcap");
    pcap::write_pcap(std::io::BufWriter::new(file), &case.connection.packets).expect("write");
    println!(
        "wrote capture to {} ({} packets)",
        path.display(),
        case.connection.len()
    );

    let file = std::fs::File::open(&path).expect("open pcap");
    let packets = pcap::read_pcap(std::io::BufReader::new(file)).expect("read");
    let conn = Connection {
        key: case.connection.key,
        packets,
    };
    assert_eq!(conn.len(), case.connection.len());

    // Forensic scoring: rank packets by suspicion.
    let scored = clap.score_connection(&conn);
    let builder = ProfileBuilder::new(clap.config.stack);
    let suspects = scored.top_packets(3, |w| builder.window_center(w, conn.len()));
    println!("strategy under analysis: {}", strategy.name);
    println!("adversarial ground truth: {:?}", case.adversarial_indices);
    println!("CLAP's top-3 suspects:    {suspects:?}");
    println!("connection score:         {:.4}", scored.score);

    let hit = suspects
        .iter()
        .any(|s| case.adversarial_indices.iter().any(|t| s.abs_diff(*t) <= 2));
    println!(
        "forensic verdict: {}",
        if hit {
            "ground truth located"
        } else {
            "missed"
        }
    );
    std::fs::remove_file(&path).ok();
}
