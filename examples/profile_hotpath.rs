//! Scoring hot-path time breakdown: where does a packet's budget go?
//!
//! ```text
//! cargo run --release --example profile_hotpath
//! ```
//!
//! Times each stage of the fused scoring pipeline in isolation — feature
//! extraction, profile construction (GRU included), the autoencoder
//! forward, the error reduction — at both engine precisions, so kernel
//! work (which quantization accelerates) can be separated from bookkeeping
//! (which it cannot). Used to size optimization work; not a benchmark
//! gate.

use clap_core::{extract_connection, Clap, ClapConfig, ProfileBuilder, ProfileWorkspace};
use neural::quant::{AeEngine, GruEngine};
use neural::{AeWorkspace, QuantMode};
use std::time::Instant;

fn main() {
    // `--preset-model` trains exactly like `exp_throughput --preset ci`
    // (same seed, epochs); default is a faster 8-epoch model.
    let (clap, _) = if std::env::args().any(|a| a == "--preset-model") {
        let preset = bench::Preset::ci();
        let train = traffic_gen::dataset(preset.seed, preset.train_conns);
        Clap::train(&train, &preset.clap)
    } else {
        let benign = traffic_gen::dataset(60, 60);
        let mut cfg = ClapConfig::ci();
        cfg.ae.epochs = 8;
        Clap::train(&benign, &cfg)
    };
    // `--adversarial`: the exp_throughput corpus (mixed attack strategies)
    // instead of benign traffic, to chase corpus-dependent effects.
    let corpus = if std::env::args().any(|a| a == "--adversarial") {
        let preset = bench::Preset::ci();
        let mut corpus = Vec::new();
        for strat in dpi_attacks::registry() {
            let set = bench::adversarial_set(strat, &preset);
            corpus.extend(set.into_iter().map(|r| r.connection));
        }
        corpus
    } else {
        traffic_gen::dataset(61, 300)
    };
    let packets: usize = corpus.iter().map(|c| c.len()).sum();
    let reps = 5;

    // Stage 1: feature extraction alone.
    let t = Instant::now();
    for _ in 0..reps {
        for conn in &corpus {
            std::hint::black_box(extract_connection(conn));
        }
    }
    let t_feat = t.elapsed() / reps;

    let fvs_all: Vec<_> = corpus.iter().map(extract_connection).collect();
    for mode in [QuantMode::Off, QuantMode::Int8] {
        let builder = ProfileBuilder::new(clap.config.stack);
        let gru = GruEngine::from_packed(clap.rnn.packed(), mode);
        let ae = AeEngine::from_model(&clap.ae, mode);
        let mut ws = ProfileWorkspace::new();
        let mut ae_ws = AeWorkspace::new();
        let mut errors = Vec::new();

        // Stage 2: profile construction (GRU run + feature writes).
        let t = Instant::now();
        for _ in 0..reps {
            for fvs in &fvs_all {
                builder.stacked_profiles_into(&clap.ranges, &gru, fvs, &mut ws);
            }
        }
        let t_prof = t.elapsed() / reps;

        // Stage 3: the AE reconstruction over the stacked windows.
        let stacks: Vec<_> = fvs_all
            .iter()
            .map(|fvs| {
                let mut w = ProfileWorkspace::new();
                builder.stacked_profiles_into(&clap.ranges, &gru, fvs, &mut w);
                w.stacked
            })
            .collect();
        let t = Instant::now();
        for _ in 0..reps {
            for s in &stacks {
                errors.clear();
                ae.reconstruction_errors_into(s, &mut ae_ws, &mut errors);
            }
        }
        let t_ae = t.elapsed() / reps;

        // Stage 4: the whole batched scorer, end to end.
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(clap.score_connections_with(&corpus, mode));
        }
        let t_full = t.elapsed() / reps;

        // Scorer construction alone (model quantization cost at Int8).
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(clap.scorer_with(mode));
        }
        println!(
            "[{mode:?}] scorer construction: {:.1}µs",
            t.elapsed().as_secs_f64() * 1e6 / reps as f64
        );

        // One reused scorer over all connections (score_batch path).
        let mut scorer = clap.scorer_with(mode);
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(scorer.score_batch(&corpus));
        }
        println!(
            "[{mode:?}] reused-scorer score_batch: {:.2}µs/packet",
            t.elapsed().as_secs_f64() * 1e6 / reps as f64 / packets as f64
        );

        println!(
            "[{mode:?}] features {:>7.1}µs | profiles+gru {:>7.1}µs | ae {:>7.1}µs | full {:>7.1}µs  \
             ({} conns / {} packets; per-packet: feat {:.2}µs prof {:.2}µs ae {:.2}µs full {:.2}µs)",
            t_feat.as_secs_f64() * 1e6,
            t_prof.as_secs_f64() * 1e6,
            t_ae.as_secs_f64() * 1e6,
            t_full.as_secs_f64() * 1e6,
            corpus.len(),
            packets,
            t_feat.as_secs_f64() * 1e6 / packets as f64,
            t_prof.as_secs_f64() * 1e6 / packets as f64,
            t_ae.as_secs_f64() * 1e6 / packets as f64,
            t_full.as_secs_f64() * 1e6 / packets as f64,
        );
    }
}
