//! Model persistence: the "RNN Model Persisted / AE Model Persisted"
//! arrows of the paper's Figure 2 and the "Loaded" arrows of Figure 3.
//!
//! Trains CLAP, serializes the whole detector (`{M_GRU, M_AE}`, the range
//! model and configuration) to JSON, reloads it and proves the deployed
//! copy is behaviourally identical.
//!
//! ```text
//! cargo run --release --example train_and_persist
//! ```

use clap_repro::clap_core::{Clap, ClapConfig};
use clap_repro::traffic_gen;

fn main() {
    let benign = traffic_gen::dataset(5150, 80);
    println!("training CLAP on {} benign connections…", benign.len());
    let (clap, summary) = Clap::train(&benign, &ClapConfig::ci());
    println!(
        "RNN accuracy {:.3}, AE final loss {:.5}",
        summary.rnn_accuracy,
        summary.ae_losses.last().unwrap()
    );

    // Persist.
    let path = std::env::temp_dir().join("clap_model.json");
    let json = clap.to_json().expect("serialize");
    std::fs::write(&path, &json).expect("write model");
    println!(
        "persisted detector: {} ({} KiB)",
        path.display(),
        json.len() / 1024
    );

    // Load in a "fresh deployment" and compare behaviour.
    let loaded = Clap::from_json(&std::fs::read_to_string(&path).expect("read")).expect("parse");
    let probe = traffic_gen::dataset(5151, 10);
    for conn in &probe {
        let a = clap.score_connection(conn);
        let b = loaded.score_connection(conn);
        assert_eq!(a.score, b.score);
        assert_eq!(a.peak_packet, b.peak_packet);
    }
    println!(
        "loaded model reproduces all {} probe scores exactly",
        probe.len()
    );
    std::fs::remove_file(&path).ok();
}
