//! The paper's motivating example (§1): **Bad-Checksum-RST**.
//!
//! An attacker injects a RST with a garbled TCP checksum right after the
//! three-way handshake. The GFW does not verify checksums, sees a RST, and
//! stops monitoring the connection; the endhost verifies, drops the RST,
//! and the (malicious) conversation continues unobserved. CLAP catches the
//! injected packet because it violates both contexts: a RST "should not
//! take place at this point" (inter-packet) and "the checksum of a RST
//! packet should be correct" (intra-packet).
//!
//! ```text
//! cargo run --release --example detect_bad_checksum_rst
//! ```

use clap_repro::clap_core::{Clap, ClapConfig};
use clap_repro::net_packet::{Connection, TcpFlags};
use clap_repro::tcp_state::{TcpState, TcpTracker};
use clap_repro::traffic_gen;

/// Hand-crafts the attack exactly as §1 describes it.
fn inject_bad_checksum_rst(conn: &Connection) -> Option<(Connection, usize)> {
    let at = conn.first_index_after_handshake()?;
    let mut out = conn.clone();
    let template = &conn.packets[at.min(conn.len() - 1)];
    let mut rst = template.clone();
    rst.tcp_mut().flags = TcpFlags::RST;
    rst.payload.clear();
    rst.fill_checksums();
    rst.tcp_mut().checksum ^= 0x0bad; // the garbled checksum
    out.packets.insert(at, rst);
    Some((out, at))
}

fn main() {
    let benign = traffic_gen::dataset(1337, 120);
    println!("training CLAP on {} benign connections…", benign.len());
    let (clap, _) = Clap::train(&benign, &ClapConfig::ci());
    let threshold = clap.threshold_from_benign(&benign[..60], 0.95);

    let victims = traffic_gen::dataset(2026, 20);
    let mut detected = 0;
    let mut localized = 0;
    let mut applicable = 0;
    for conn in &victims {
        let Some((attacked, truth)) = inject_bad_checksum_rst(conn) else {
            continue;
        };
        applicable += 1;

        // What does the rigorous reference stack say about the RST?
        let mut tracker = TcpTracker::new();
        let labels: Vec<_> = attacked
            .packets
            .iter()
            .enumerate()
            .map(|(i, p)| tracker.process(p, attacked.direction(i)))
            .collect();
        assert!(!labels[truth].in_window, "endhost must reject the bad RST");
        assert_ne!(
            labels[truth].state,
            TcpState::Close,
            "connection must survive"
        );

        let s = clap.score_connection(&attacked);
        if s.score > threshold {
            detected += 1;
        }
        if s.peak_packet.abs_diff(truth) <= 2 {
            localized += 1;
        }
    }
    println!("applicable victims:       {applicable}");
    println!("detected (score > thr):   {detected}");
    println!("localized within ±2 pkts: {localized}");
    assert!(
        detected * 2 > applicable,
        "CLAP should detect most Bad-Checksum-RSTs"
    );
}
