//! Tour of the attack corpus: applies each of the 73 strategies to one
//! benign connection and prints what changed — a quick way to see the
//! simulator's output and the Table 8 taxonomy.
//!
//! ```text
//! cargo run --release --example attack_zoo [-- <strategy-id-substring>]
//! ```

use clap_repro::dpi_attacks::{registry, ContextCategory};
use clap_repro::tcp_state::TcpTracker;
use clap_repro::traffic_gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default();
    let benign = traffic_gen::dataset(404, 10);
    let mut rng = StdRng::seed_from_u64(9);

    println!(
        "{:<38} {:>5} {:>7} {:>9}  name",
        "strategy id", "cat", "#adv", "dropped"
    );
    for strategy in registry() {
        if !strategy.id.contains(&filter) {
            continue;
        }
        // First applicable victim.
        let Some(result) = benign.iter().find_map(|c| strategy.apply(c, &mut rng)) else {
            println!("{:<38} (no applicable connection)", strategy.id);
            continue;
        };
        // How does the rigorous reference stack treat the injected packets?
        let mut tracker = TcpTracker::new();
        let labels: Vec<_> = result
            .connection
            .packets
            .iter()
            .enumerate()
            .map(|(i, p)| tracker.process(p, result.connection.direction(i)))
            .collect();
        let dropped = result
            .adversarial_indices
            .iter()
            .filter(|&&i| !labels[i].in_window)
            .count();
        let cat = match strategy.category {
            ContextCategory::InterPacket => "inter",
            ContextCategory::IntraPacket => "intra",
        };
        println!(
            "{:<38} {:>5} {:>7} {:>6}/{:<2}  {}",
            strategy.id,
            cat,
            result.adversarial_indices.len(),
            dropped,
            result.adversarial_indices.len(),
            strategy.name
        );
    }
}
