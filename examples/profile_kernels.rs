//! Raw kernel throughput: f32 vs int8 dot products at hot-path lengths.
//!
//! ```text
//! cargo run --release --example profile_kernels
//! ```

use neural::quant::{self, QuantMatrix};
use neural::{KernelSet, Matrix};
use std::time::Instant;

fn main() {
    let ks = KernelSet::active();
    println!("kernel set: {}", ks.name);
    for &len in &[345usize, 192, 96, 40] {
        let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.37).sin()).collect();
        let rows: Vec<Vec<f32>> = (0..4)
            .map(|r| (0..len).map(|i| ((i + r) as f32 * 0.51).cos()).collect())
            .collect();
        let qa: Vec<u8> = (0..len).map(|i| (i % 128) as u8).collect();
        let qrows: Vec<Vec<i8>> = (0..4)
            .map(|r| {
                (0..len)
                    .map(|i| (((i * 7 + r) % 255) as i32 - 127) as i8)
                    .collect()
            })
            .collect();
        let iters = 2_000_000u64 / len as u64;

        let t = Instant::now();
        let mut acc = 0.0f32;
        for _ in 0..iters {
            let o = ks.dot4(
                std::hint::black_box(&a),
                &rows[0],
                &rows[1],
                &rows[2],
                &rows[3],
            );
            acc += o[0];
        }
        let f32_t = t.elapsed();

        let t = Instant::now();
        let mut iacc = 0i32;
        for _ in 0..iters {
            let o = ks.dot4_i8(
                std::hint::black_box(&qa),
                &qrows[0],
                &qrows[1],
                &qrows[2],
                &qrows[3],
            );
            iacc = iacc.wrapping_add(o[0]);
        }
        let i8_t = t.elapsed();

        let macs = iters as f64 * len as f64 * 4.0;
        println!(
            "len {len:>4}: f32 dot4 {:>7.2} GMAC/s | int8 dot4 {:>7.2} GMAC/s | ratio {:.2}x  ({acc:.1} {iacc})",
            macs / f32_t.as_secs_f64() / 1e9,
            macs / i8_t.as_secs_f64() / 1e9,
            f32_t.as_secs_f64() / i8_t.as_secs_f64(),
        );
    }

    // The full quantized GEMM (quantize-activations included) vs f32, at
    // the AE layer-1 shape.
    let a = Matrix::from_fn(26, 345, |r, c| ((r * 345 + c) as f32 * 0.13).sin());
    let w = Matrix::from_fn(192, 345, |r, c| ((r * 345 + c) as f32 * 0.29).cos());
    let qw = QuantMatrix::quantize(&w);
    let mut c = Matrix::default();
    let mut qa = Vec::new();
    let iters = 200;

    let t = Instant::now();
    for _ in 0..iters {
        Matrix::matmul_nt_into(std::hint::black_box(&a), &w, &mut c);
    }
    let f32_t = t.elapsed();
    let t = Instant::now();
    for _ in 0..iters {
        qw.matmul_nt_into(std::hint::black_box(&a), &mut qa, &mut c);
    }
    let i8_t = t.elapsed();
    let macs = iters as f64 * 26.0 * 345.0 * 192.0;
    println!(
        "AE layer-1 GEMM 26x345x192: f32 {:.2} GMAC/s | int8 {:.2} GMAC/s | ratio {:.2}x",
        macs / f32_t.as_secs_f64() / 1e9,
        macs / i8_t.as_secs_f64() / 1e9,
        f32_t.as_secs_f64() / i8_t.as_secs_f64(),
    );

    // Large-batch GEMM (the concatenated score_batch shape).
    for (rows, cols, outs) in [
        (8000usize, 345usize, 192usize),
        (8000, 192, 96),
        (8000, 96, 40),
    ] {
        let a = Matrix::from_fn(rows, cols, |r, c| ((r * cols + c) as f32 * 0.13).sin());
        let w = Matrix::from_fn(outs, cols, |r, c| ((r * cols + c) as f32 * 0.29).cos());
        let qw = QuantMatrix::quantize(&w);
        let mut c = Matrix::default();
        let iters = 3;
        let t = Instant::now();
        for _ in 0..iters {
            Matrix::matmul_nt_into(std::hint::black_box(&a), &w, &mut c);
        }
        let f32_t = t.elapsed();
        let t = Instant::now();
        for _ in 0..iters {
            qw.matmul_nt_into(std::hint::black_box(&a), &mut qa, &mut c);
        }
        let i8_t = t.elapsed();
        let macs = iters as f64 * (rows * cols * outs) as f64;
        println!(
            "batch GEMM {rows}x{cols}x{outs}: f32 {:.2} GMAC/s | int8 {:.2} GMAC/s | ratio {:.2}x",
            macs / f32_t.as_secs_f64() / 1e9,
            macs / i8_t.as_secs_f64() / 1e9,
            f32_t.as_secs_f64() / i8_t.as_secs_f64(),
        );
    }

    // Activation quantization alone, per 345-wide row.
    let x: Vec<f32> = (0..345).map(|i| (i as f32 * 0.17).sin()).collect();
    let t = Instant::now();
    for _ in 0..200_000 {
        quant::quantize_activations(std::hint::black_box(&x), &mut qa);
    }
    println!(
        "quantize_activations(345): {:.0} ns/row",
        t.elapsed().as_secs_f64() * 1e9 / 200_000.0
    );
}
