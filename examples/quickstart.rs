//! Quickstart: train CLAP on benign traffic, score unseen connections.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! CLAP is unsupervised: it sees *only benign* traffic during training and
//! flags connections whose packet context does not fit the learned benign
//! distribution. Here the benign traffic is synthetic (the MAWI-substitute
//! generator); swap in `net_packet::pcap::read_pcap` for real captures.

use clap_repro::clap_core::{Clap, ClapConfig};
use clap_repro::dpi_attacks;
use clap_repro::traffic_gen;

fn main() {
    // 1. Benign training corpus (synthetic, deterministic).
    let benign = traffic_gen::dataset(42, 120);
    println!("training on {} benign connections…", benign.len());
    let (clap, summary) = Clap::train(&benign, &ClapConfig::ci());
    println!(
        "trained: RNN state-prediction accuracy {:.3}, {} context profiles",
        summary.rnn_accuracy, summary.profiles
    );

    // 2. Pick a detection threshold from benign scores (≈5% FP budget).
    let holdout = traffic_gen::dataset(43, 30);
    let threshold = clap.threshold_from_benign(&holdout, 0.95);
    println!("threshold @95th benign percentile: {threshold:.4}");

    // 3. Score an unseen benign connection.
    let unseen = traffic_gen::dataset(44, 5);
    let s = clap.score_connection(&unseen[0]);
    println!(
        "benign connection: score {:.4} -> {}",
        s.score,
        if s.score > threshold {
            "FLAGGED (false positive)"
        } else {
            "pass"
        }
    );

    // 4. Score the same connection with a DPI-evasion attack injected.
    let strategy = dpi_attacks::strategy_by_id("geneva-rst-bad-chksum").unwrap();
    let attacked = dpi_attacks::build_adversarial_set(strategy, &unseen, 7);
    let r = &attacked[0];
    let s = clap.score_connection(&r.connection);
    println!(
        "attacked connection ({}): score {:.4} -> {}",
        strategy.name,
        s.score,
        if s.score > threshold {
            "FLAGGED"
        } else {
            "missed"
        }
    );
    println!(
        "localization: CLAP points at packet {}, ground truth {:?}",
        s.peak_packet, r.adversarial_indices
    );
}
