//! Integration: the pcap path — attacked traces survive a write/read
//! round trip through the on-disk capture format with identical scores
//! (CLAP as an offline forensic tool must behave the same on re-read
//! captures as on live ones).

use clap_repro::clap_core::{Clap, ClapConfig};
use clap_repro::dpi_attacks;
use clap_repro::net_packet::{pcap, Connection};
use clap_repro::traffic_gen;

#[test]
fn scores_survive_pcap_round_trip() {
    let benign = traffic_gen::dataset(0x9ca9, 50);
    let mut cfg = ClapConfig::ci();
    cfg.ae.epochs = 6;
    let (clap, _) = Clap::train(&benign, &cfg);

    // A corruption that does not move the header/payload boundary: a lying
    // data offset would legitimately re-parse differently (the wire bytes
    // are identical but any parser must re-split them), so score equality
    // only holds for boundary-preserving corruptions.
    let victims = traffic_gen::dataset(0x9cb0, 6);
    let strategy = dpi_attacks::strategy_by_id("liberate-bad-tcp-checksum-max").unwrap();
    let attacked = dpi_attacks::build_adversarial_set(strategy, &victims, 2);
    assert!(!attacked.is_empty());

    for r in &attacked {
        let mut buf = Vec::new();
        pcap::write_pcap(&mut buf, &r.connection.packets).unwrap();
        let packets = pcap::read_pcap(&buf[..]).unwrap();
        assert_eq!(packets.len(), r.connection.len(), "no packets lost");
        let reread = Connection {
            key: r.connection.key,
            packets,
        };

        let a = clap.score_connection(&r.connection);
        let b = clap.score_connection(&reread);
        // Timestamps survive at microsecond precision; scores must agree
        // to float tolerance.
        assert!(
            (a.score - b.score).abs() < 1e-4,
            "score drift through pcap: {} vs {}",
            a.score,
            b.score
        );
        assert_eq!(a.peak_packet, b.peak_packet);
    }
}

#[test]
fn corrupted_headers_survive_capture() {
    // The deliberately ill-formed fields (bad checksums, lying lengths,
    // invalid offsets) must round-trip bit-exactly, otherwise the capture
    // sanitizes the attack away.
    let victims = traffic_gen::dataset(0x9cb1, 4);
    for id in [
        "liberate-bad-ip-len-long-max",
        "geneva-dataoffset-bad-chksum",
        "liberate-invalid-ip-version-min",
        "symtcp-gfw-data-bad-chksum-md5",
    ] {
        let strategy = dpi_attacks::strategy_by_id(id).unwrap();
        let attacked = dpi_attacks::build_adversarial_set(strategy, &victims, 3);
        for r in &attacked {
            let mut buf = Vec::new();
            pcap::write_pcap(&mut buf, &r.connection.packets).unwrap();
            let packets = pcap::read_pcap(&buf[..]).unwrap();
            for &i in &r.adversarial_indices {
                let orig = &r.connection.packets[i];
                let back = &packets[i];
                // Byte-exact survival is the real invariant: a corrupted
                // data offset legitimately re-parses with a different
                // header/payload split, but the wire image must be
                // untouched — otherwise the capture sanitized the attack.
                assert_eq!(orig.to_bytes(), back.to_bytes(), "{id}: wire bytes drift");
            }
        }
    }
}
