//! Cross-crate integration tests: the full train → attack → detect →
//! localize loop, exercised exactly as a downstream user would.

use clap_repro::baselines::{KitsuneConfig, KitsuneLite};
use clap_repro::clap_core::{auc_roc, Clap, ClapConfig};
use clap_repro::dpi_attacks::{self, registry, AttackSource};
use clap_repro::traffic_gen;

fn trained() -> (Clap, Vec<net_packet::Connection>, Vec<f32>) {
    let benign = traffic_gen::dataset(0xe2e, 80);
    let (clap, summary) = Clap::train(&benign, &ClapConfig::ci());
    assert!(
        summary.rnn_accuracy > 0.6,
        "rnn accuracy {}",
        summary.rnn_accuracy
    );
    let held_out = traffic_gen::dataset(0xe2f, 25);
    let benign_scores: Vec<f32> = clap
        .score_connections(&held_out)
        .iter()
        .map(|s| s.score)
        .collect();
    (clap, held_out, benign_scores)
}

#[test]
fn clap_separates_attacks_from_benign() {
    let (clap, held_out, benign_scores) = trained();
    // One representative strategy per source paper.
    for id in [
        "symtcp-snort-rst-pure",
        "liberate-bad-tcp-checksum-max",
        "geneva-rst-bad-chksum",
    ] {
        let strategy = dpi_attacks::strategy_by_id(id).unwrap();
        let attacked = dpi_attacks::build_adversarial_set(strategy, &held_out, 5);
        assert!(!attacked.is_empty());
        let adv_scores: Vec<f32> = attacked
            .iter()
            .map(|r| clap.score_connection(&r.connection).score)
            .collect();
        let auc = auc_roc(&benign_scores, &adv_scores);
        // CI-budget bound: the quick/paper presets score well above this
        // (see EXPERIMENTS.md); at 15 AE epochs 0.75 is the safe floor.
        assert!(auc > 0.75, "{id}: AUC {auc} too low for CLAP");
    }
}

#[test]
fn clap_beats_kitsune_on_dpi_evasion() {
    let benign = traffic_gen::dataset(0xcafe, 60);
    let (clap, _) = Clap::train(&benign, &ClapConfig::ci());
    let kitsune = KitsuneLite::train(&benign, &KitsuneConfig::default());
    let held_out = traffic_gen::dataset(0xcaff, 20);
    let clap_benign: Vec<f32> = clap
        .score_connections(&held_out)
        .iter()
        .map(|s| s.score)
        .collect();
    let kit_benign: Vec<f32> = kitsune
        .score_connections(&held_out)
        .iter()
        .map(|s| s.score)
        .collect();

    let strategy = dpi_attacks::strategy_by_id("symtcp-zeek-data-bad-seq").unwrap();
    let attacked = dpi_attacks::build_adversarial_set(strategy, &held_out, 5);
    let clap_adv: Vec<f32> = attacked
        .iter()
        .map(|r| clap.score_connection(&r.connection).score)
        .collect();
    let kit_adv: Vec<f32> = attacked
        .iter()
        .map(|r| kitsune.score_connection(&r.connection).score)
        .collect();
    let clap_auc = auc_roc(&clap_benign, &clap_adv);
    let kit_auc = auc_roc(&kit_benign, &kit_adv);
    assert!(
        clap_auc > kit_auc + 0.2,
        "CLAP ({clap_auc}) must clearly beat Kitsune ({kit_auc})"
    );
}

#[test]
fn localization_finds_injected_packets() {
    let (clap, held_out, _) = trained();
    let strategy = dpi_attacks::strategy_by_id("geneva-rst-bad-chksum").unwrap();
    let attacked = dpi_attacks::build_adversarial_set(strategy, &held_out, 5);
    let mut top5_hits = 0;
    for r in &attacked {
        let s = clap.score_connection(&r.connection);
        if r.adversarial_indices
            .iter()
            .any(|&t| s.peak_packet.abs_diff(t) <= 2)
        {
            top5_hits += 1;
        }
    }
    assert!(
        top5_hits * 3 >= attacked.len() * 2,
        "Top-5 localization too weak: {top5_hits}/{}",
        attacked.len()
    );
}

#[test]
fn every_strategy_produces_scoreable_traces() {
    let (clap, held_out, _) = trained();
    let subset = &held_out[..4];
    for strategy in registry() {
        let attacked = dpi_attacks::build_adversarial_set(strategy, subset, 11);
        for r in &attacked {
            let s = clap.score_connection(&r.connection);
            assert!(s.score.is_finite() && s.score >= 0.0, "{}", strategy.id);
            assert!(s.peak_packet < r.connection.len(), "{}", strategy.id);
        }
    }
}

#[test]
fn sources_cover_the_paper_corpus() {
    // 73 paper strategies plus the Extended protocol-diversity families.
    assert_eq!(
        registry().iter().filter(|s| s.source.in_paper()).count(),
        73
    );
    for (source, count) in [
        (AttackSource::SymTcp, 30),
        (AttackSource::Liberate, 23),
        (AttackSource::Geneva, 20),
        (AttackSource::Extended, 3),
    ] {
        assert_eq!(
            registry().iter().filter(|s| s.source == source).count(),
            count,
            "{source:?}"
        );
    }
}
