//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde subset — no `syn`/`quote` available offline, so the item
//! is parsed directly from the token stream and the impl is emitted as
//! source text.
//!
//! Supported shapes (everything this workspace derives on):
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize as their inner value, wider tuples
//!   as arrays),
//! * unit structs,
//! * enums with unit, tuple and struct variants, externally tagged like
//!   real serde_json: `"Variant"`, `{"Variant": payload}`,
//!   `{"Variant": {..fields..}}`.
//!
//! Generics, lifetimes and `#[serde(...)]` attributes are intentionally
//! unsupported and produce a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&item),
        Mode::Deserialize => gen_deserialize(&item),
    };
    match code.parse() {
        Ok(ts) => ts,
        Err(e) => compile_error(&format!("serde_derive internal error: {e}")),
    }
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips `#[...]` attribute groups (including doc comments).
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    self.pos += 1;
                }
                _ => break,
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Skips a type (or any token run) up to a top-level `,`, tracking
    /// `<`/`>` nesting. Returns whether any tokens were consumed.
    fn skip_to_toplevel_comma(&mut self) -> bool {
        let mut angle_depth = 0usize;
        let mut consumed = false;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    self.pos += 1; // consume the comma
                    return consumed;
                }
                _ => {}
            }
            self.pos += 1;
            consumed = true;
        }
        consumed
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kw = c.expect_ident()?;
    match kw.as_str() {
        "struct" => {
            let name = c.expect_ident()?;
            check_no_generics(&mut c)?;
            match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Ok(Item::NamedStruct {
                        name,
                        fields: parse_named_fields(g.stream())?,
                    })
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Ok(Item::TupleStruct {
                        name,
                        arity: count_tuple_fields(g.stream()),
                    })
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
                other => Err(format!("unexpected struct body: {other:?}")),
            }
        }
        "enum" => {
            let name = c.expect_ident()?;
            check_no_generics(&mut c)?;
            match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                    name,
                    variants: parse_variants(g.stream())?,
                }),
                other => Err(format!("unexpected enum body: {other:?}")),
            }
        }
        other => Err(format!(
            "serde_derive supports structs and enums, found `{other}`"
        )),
    }
}

fn check_no_generics(c: &mut Cursor) -> Result<(), String> {
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err("serde_derive (vendored) does not support generic types".into());
        }
    }
    Ok(())
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.peek().is_none() {
            break;
        }
        let field = c.expect_ident()?;
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{field}`, found {other:?}"
                ))
            }
        }
        c.skip_to_toplevel_comma();
        fields.push(field);
    }
    Ok(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    let mut arity = 0;
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.peek().is_none() {
            break;
        }
        c.skip_to_toplevel_comma();
        arity += 1;
    }
    arity
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident()?;
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                c.pos += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.pos += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        match c.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                c.pos += 1;
                c.skip_to_toplevel_comma();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                c.pos += 1;
            }
            _ => {}
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn push_literal(code: &mut String, text: &str) {
    code.push_str(&format!("out.push_str({text:?});"));
}

fn gen_serialize(item: &Item) -> String {
    let mut body = String::new();
    let name = match item {
        Item::NamedStruct { name, fields } => {
            body.push_str("out.push('{');");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');");
                }
                push_literal(&mut body, &format!("\"{f}\":"));
                body.push_str(&format!("::serde::Serialize::ser_json(&self.{f}, out);"));
            }
            body.push_str("out.push('}');");
            name
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                body.push_str("::serde::Serialize::ser_json(&self.0, out);");
            } else {
                body.push_str("out.push('[');");
                for i in 0..*arity {
                    if i > 0 {
                        body.push_str("out.push(',');");
                    }
                    body.push_str(&format!("::serde::Serialize::ser_json(&self.{i}, out);"));
                }
                body.push_str("out.push(']');");
            }
            name
        }
        Item::UnitStruct { name } => {
            push_literal(&mut body, "null");
            name
        }
        Item::Enum { name, variants } => {
            body.push_str("match self {");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        body.push_str(&format!("{name}::{vn} => {{"));
                        push_literal(&mut body, &format!("\"{vn}\""));
                        body.push('}');
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__v{i}")).collect();
                        body.push_str(&format!("{name}::{vn}({}) => {{", binds.join(", ")));
                        push_literal(&mut body, &format!("{{\"{vn}\":"));
                        if *arity == 1 {
                            body.push_str("::serde::Serialize::ser_json(__v0, out);");
                        } else {
                            body.push_str("out.push('[');");
                            for (i, b) in binds.iter().enumerate() {
                                if i > 0 {
                                    body.push_str("out.push(',');");
                                }
                                body.push_str(&format!("::serde::Serialize::ser_json({b}, out);"));
                            }
                            body.push_str("out.push(']');");
                        }
                        body.push_str("out.push('}');}");
                    }
                    VariantKind::Struct(fields) => {
                        body.push_str(&format!("{name}::{vn} {{ {} }} => {{", fields.join(", ")));
                        push_literal(&mut body, &format!("{{\"{vn}\":{{"));
                        for (i, f) in fields.iter().enumerate() {
                            if i > 0 {
                                body.push_str("out.push(',');");
                            }
                            push_literal(&mut body, &format!("\"{f}\":"));
                            body.push_str(&format!("::serde::Serialize::ser_json({f}, out);"));
                        }
                        push_literal(&mut body, "}}");
                        body.push('}');
                    }
                }
            }
            body.push('}');
            name
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn ser_json(&self, out: &mut ::std::string::String) {{ {body} }}\n\
        }}"
    )
}

/// Generates the object-parsing snippet shared by named structs and struct
/// variants: fills `__f_*` slots, then builds `ctor {{ .. }}`.
fn gen_named_de(fields: &[String], ctor: &str) -> String {
    let mut code = String::new();
    code.push_str("p.obj_begin()?;");
    for f in fields {
        code.push_str(&format!("let mut __f_{f} = ::core::option::Option::None;"));
    }
    code.push_str(
        "let mut __first = true;\
         while let ::core::option::Option::Some(__key) = p.obj_next_key(__first)? {\
             __first = false;\
             match __key.as_str() {",
    );
    for f in fields {
        code.push_str(&format!(
            "{f:?} => {{ __f_{f} = ::core::option::Option::Some(\
                 ::serde::Deserialize::de_json(p)?); }}"
        ));
    }
    code.push_str("_ => { p.skip_value()?; } } }");
    code.push_str(&format!("{ctor} {{"));
    for f in fields {
        code.push_str(&format!(
            "{f}: match __f_{f} {{ \
                ::core::option::Option::Some(__v) => __v, \
                ::core::option::Option::None => \
                    return ::core::result::Result::Err(p.missing({f:?})) }},"
        ));
    }
    code.push('}');
    code
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let inner = gen_named_de(fields, name);
            (name, format!("::core::result::Result::Ok({{ {inner} }})"))
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("::core::result::Result::Ok({name}(::serde::Deserialize::de_json(p)?))")
            } else {
                let mut code = String::from("p.arr_begin()?;");
                let mut binds = Vec::new();
                for i in 0..*arity {
                    if i > 0 {
                        code.push_str("p.expect_char(',')?;");
                    }
                    code.push_str(&format!("let __v{i} = ::serde::Deserialize::de_json(p)?;"));
                    binds.push(format!("__v{i}"));
                }
                code.push_str("p.expect_char(']')?;");
                format!(
                    "{{ {code} ::core::result::Result::Ok({name}({})) }}",
                    binds.join(", ")
                )
            };
            (name, body)
        }
        Item::UnitStruct { name } => (
            name,
            format!(
                "if p.eat_null() {{ ::core::result::Result::Ok({name}) }} \
                 else {{ ::core::result::Result::Err(p.error(\"expected null\")) }}"
            ),
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            let mut has_data = false;
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "{vn:?} => ::core::result::Result::Ok({name}::{vn}),"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        has_data = true;
                        let mut code = String::new();
                        let mut binds = Vec::new();
                        if *arity == 1 {
                            code.push_str("let __v0 = ::serde::Deserialize::de_json(p)?;");
                            binds.push("__v0".to_string());
                        } else {
                            code.push_str("p.arr_begin()?;");
                            for i in 0..*arity {
                                if i > 0 {
                                    code.push_str("p.expect_char(',')?;");
                                }
                                code.push_str(&format!(
                                    "let __v{i} = ::serde::Deserialize::de_json(p)?;"
                                ));
                                binds.push(format!("__v{i}"));
                            }
                            code.push_str("p.expect_char(']')?;");
                        }
                        data_arms.push_str(&format!(
                            "{vn:?} => {{ {code} {name}::{vn}({}) }}",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        has_data = true;
                        let inner = gen_named_de(fields, &format!("{name}::{vn}"));
                        data_arms.push_str(&format!("{vn:?} => {{ {inner} }}"));
                    }
                }
            }
            let data_branch = if has_data {
                format!(
                    "::serde::de::EnumHead::Data(__name) => {{\
                         let __value = match __name.as_str() {{\
                             {data_arms}\
                             __other => return ::core::result::Result::Err(p.error(\
                                 &::std::format!(\"unknown variant `{{__other}}`\"))),\
                         }};\
                         p.enum_end()?;\
                         ::core::result::Result::Ok(__value)\
                     }}"
                )
            } else {
                "::serde::de::EnumHead::Data(__name) => \
                     ::core::result::Result::Err(p.error(\
                         &::std::format!(\"unknown variant `{{__name}}`\")))"
                    .to_string()
            };
            let body = format!(
                "match p.enum_begin()? {{\
                     ::serde::de::EnumHead::Unit(__name) => match __name.as_str() {{\
                         {unit_arms}\
                         __other => ::core::result::Result::Err(p.error(\
                             &::std::format!(\"unknown unit variant `{{__other}}`\"))),\
                     }},\
                     {data_branch}\
                 }}"
            );
            (name, body)
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn de_json(p: &mut ::serde::de::Parser<'_>) \
                -> ::core::result::Result<Self, ::serde::de::Error> {{ {body} }}\n\
        }}"
    )
}
