//! Minimal JSON pull-parser backing the derived `Deserialize` impls.

/// Parse error with byte position context.
#[derive(Debug, Clone)]
pub struct Error {
    pub message: String,
    pub position: usize,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl std::error::Error for Error {}

/// Cursor over JSON text. The derive macro drives this directly; users go
/// through `serde_json::from_str`.
pub struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// First token of an enum value: a bare string (unit variant) or an object
/// wrapping the variant's payload.
pub enum EnumHead {
    Unit(String),
    Data(String),
}

impl<'a> Parser<'a> {
    pub fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    pub fn error(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    pub fn expect_char(&mut self, c: char) -> Result<(), Error> {
        match self.peek() {
            Some(b) if b == c as u8 => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.error(&format!(
                "expected `{c}`, found {}",
                other.map_or("end of input".into(), |b| format!("`{}`", b as char))
            ))),
        }
    }

    /// Consumes `null` if present.
    pub fn eat_null(&mut self) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            true
        } else {
            false
        }
    }

    pub fn parse_bool(&mut self) -> Result<bool, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"true") {
            self.pos += 4;
            Ok(true)
        } else if self.bytes[self.pos..].starts_with(b"false") {
            self.pos += 5;
            Ok(false)
        } else {
            Err(self.error("expected boolean"))
        }
    }

    /// Returns the raw text of a number token.
    pub fn parse_number(&mut self) -> Result<String, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected number"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid UTF-8 in number"))?
            .to_string())
    }

    pub fn parse_string(&mut self) -> Result<String, Error> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.error("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.error("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.error("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| self.error("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    // -- objects ----------------------------------------------------------

    pub fn obj_begin(&mut self) -> Result<(), Error> {
        self.expect_char('{')
    }

    /// Advances to the next key inside an object. Returns `None` after
    /// consuming the closing `}`. `first` distinguishes "no comma yet".
    pub fn obj_next_key(&mut self, first: bool) -> Result<Option<String>, Error> {
        match self.peek() {
            Some(b'}') => {
                self.pos += 1;
                Ok(None)
            }
            Some(b',') if !first => {
                self.pos += 1;
                let key = self.parse_string()?;
                self.expect_char(':')?;
                Ok(Some(key))
            }
            Some(b'"') if first => {
                let key = self.parse_string()?;
                self.expect_char(':')?;
                Ok(Some(key))
            }
            _ => Err(self.error("malformed object")),
        }
    }

    pub fn missing(&self, field: &str) -> Error {
        self.error(&format!("missing field `{field}`"))
    }

    // -- arrays -----------------------------------------------------------

    pub fn arr_begin(&mut self) -> Result<(), Error> {
        self.expect_char('[')
    }

    /// True when another array item follows; consumes `,` / `]` as needed.
    pub fn arr_has_item(&mut self, first: bool) -> Result<bool, Error> {
        match self.peek() {
            Some(b']') => {
                self.pos += 1;
                Ok(false)
            }
            Some(b',') if !first => {
                self.pos += 1;
                Ok(true)
            }
            Some(_) if first => Ok(true),
            _ => Err(self.error("malformed array")),
        }
    }

    // -- enums ------------------------------------------------------------

    /// Reads the head of an externally-tagged enum value.
    pub fn enum_begin(&mut self) -> Result<EnumHead, Error> {
        match self.peek() {
            Some(b'"') => Ok(EnumHead::Unit(self.parse_string()?)),
            Some(b'{') => {
                self.pos += 1;
                let variant = self.parse_string()?;
                self.expect_char(':')?;
                Ok(EnumHead::Data(variant))
            }
            _ => Err(self.error("expected enum value")),
        }
    }

    /// Consumes the `}` closing a data-carrying enum variant.
    pub fn enum_end(&mut self) -> Result<(), Error> {
        self.expect_char('}')
    }

    // -- generic skipping --------------------------------------------------

    /// Skips one complete JSON value (for unknown object keys).
    pub fn skip_value(&mut self) -> Result<(), Error> {
        match self.peek() {
            Some(b'"') => {
                self.parse_string()?;
                Ok(())
            }
            Some(b'{') => {
                self.pos += 1;
                let mut first = true;
                loop {
                    match self.obj_next_key(first)? {
                        Some(_) => {
                            self.skip_value()?;
                            first = false;
                        }
                        None => return Ok(()),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut first = true;
                while self.arr_has_item(first)? {
                    self.skip_value()?;
                    first = false;
                }
                Ok(())
            }
            Some(b't') | Some(b'f') => {
                self.parse_bool()?;
                Ok(())
            }
            Some(b'n') => {
                if self.eat_null() {
                    Ok(())
                } else {
                    Err(self.error("expected value"))
                }
            }
            Some(_) => {
                self.parse_number()?;
                Ok(())
            }
            None => Err(self.error("unexpected end of input")),
        }
    }

    /// Asserts the input is fully consumed (whitespace aside).
    pub fn finish(&mut self) -> Result<(), Error> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(self.error("trailing characters after JSON value"))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}
