//! Offline drop-in subset of `serde`.
//!
//! The build environment has no network access, so this crate provides the
//! two traits the workspace derives everywhere, wired directly to JSON:
//! [`Serialize`] writes JSON text, [`Deserialize`] reads it back through
//! [`de::Parser`]. The companion `serde_derive` crate generates impls for
//! structs and enums with the same externally-tagged layout real serde_json
//! uses, and the `serde_json` vendor crate provides `to_string`/`from_str`
//! on top.
//!
//! Float round-tripping matters here (trained models are persisted and
//! reloaded, and tests assert score equality), so numbers are written with
//! Rust's shortest-round-trip `Display` and parsed with `str::parse`.

pub use serde_derive::{Deserialize, Serialize};

pub mod de;

/// Serializes `self` as JSON text appended to `out`.
pub trait Serialize {
    fn ser_json(&self, out: &mut String);
}

/// Deserializes `Self` from the JSON text behind `p`.
pub trait Deserialize: Sized {
    fn de_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for the primitive / std types the workspace persists.
// ---------------------------------------------------------------------------

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser_json(&self, out: &mut String) {
                out.push_str(itoa_buf(*self as i128).as_str());
            }
        }
    )*};
}
impl_ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer formatting without the `to_string` allocation churn.
fn itoa_buf(mut v: i128) -> String {
    // Serialization is not a hot path; a String per number is fine, this
    // helper just centralizes sign handling.
    let neg = v < 0;
    if neg {
        v = -v;
    }
    let mut s = v.to_string();
    if neg {
        s.insert(0, '-');
    }
    s
}

impl Serialize for bool {
    fn ser_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f32 {
    fn ser_json(&self, out: &mut String) {
        if self.is_finite() {
            // `Display` is shortest-round-trip; force a float-looking token
            // so parsing stays symmetric.
            let s = self.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for f64 {
    fn ser_json(&self, out: &mut String) {
        if self.is_finite() {
            let s = self.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        } else {
            out.push_str("null");
        }
    }
}

pub(crate) fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for String {
    fn ser_json(&self, out: &mut String) {
        escape_into(self, out);
    }
}

impl Serialize for str {
    fn ser_json(&self, out: &mut String) {
        escape_into(self, out);
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn ser_json(&self, out: &mut String) {
        escape_into(&self.to_string(), out);
    }
}

impl Serialize for std::net::Ipv6Addr {
    fn ser_json(&self, out: &mut String) {
        escape_into(&self.to_string(), out);
    }
}

impl Serialize for std::net::IpAddr {
    fn ser_json(&self, out: &mut String) {
        escape_into(&self.to_string(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser_json(&self, out: &mut String) {
        self.as_slice().ser_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.ser_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn ser_json(&self, out: &mut String) {
        self.as_slice().ser_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn ser_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.ser_json(out),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser_json(&self, out: &mut String) {
        (*self).ser_json(out);
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn ser_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.ser_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}
impl_ser_tuple!((0 A, 1 B)(0 A, 1 B, 2 C)(0 A, 1 B, 2 C, 3 D));

// ---------------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------------

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn de_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
                let n = p.parse_number()?;
                n.parse::<$t>().map_err(|_| p.error(&format!(
                    "invalid {} literal `{n}`", stringify!($t)
                )))
            }
        }
    )*};
}
impl_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for bool {
    fn de_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        p.parse_bool()
    }
}

impl Deserialize for f32 {
    fn de_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        if p.eat_null() {
            return Ok(f32::NAN);
        }
        let n = p.parse_number()?;
        n.parse::<f32>()
            .map_err(|_| p.error(&format!("invalid f32 literal `{n}`")))
    }
}

impl Deserialize for f64 {
    fn de_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        if p.eat_null() {
            return Ok(f64::NAN);
        }
        let n = p.parse_number()?;
        n.parse::<f64>()
            .map_err(|_| p.error(&format!("invalid f64 literal `{n}`")))
    }
}

impl Deserialize for String {
    fn de_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        p.parse_string()
    }
}

impl Deserialize for &'static str {
    fn de_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        // The workspace stores interned identifiers (e.g. attack-strategy
        // ids) as `&'static str`. Leaking on deserialization is bounded by
        // the small fixed id vocabulary and keeps those fields serializable.
        Ok(Box::leak(p.parse_string()?.into_boxed_str()))
    }
}

impl Deserialize for std::net::Ipv4Addr {
    fn de_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        let s = p.parse_string()?;
        s.parse()
            .map_err(|_| p.error(&format!("invalid IPv4 address `{s}`")))
    }
}

impl Deserialize for std::net::Ipv6Addr {
    fn de_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        let s = p.parse_string()?;
        s.parse()
            .map_err(|_| p.error(&format!("invalid IPv6 address `{s}`")))
    }
}

impl Deserialize for std::net::IpAddr {
    fn de_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        let s = p.parse_string()?;
        s.parse()
            .map_err(|_| p.error(&format!("invalid IP address `{s}`")))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn de_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        let mut out = Vec::new();
        p.arr_begin()?;
        while p.arr_has_item(out.is_empty())? {
            out.push(T::de_json(p)?);
        }
        Ok(out)
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn de_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        let v: Vec<T> = Vec::de_json(p)?;
        let len = v.len();
        v.try_into()
            .map_err(|_| p.error(&format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn de_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        if p.eat_null() {
            Ok(None)
        } else {
            Ok(Some(T::de_json(p)?))
        }
    }
}

macro_rules! impl_de_tuple {
    ($(($($t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn de_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
                p.arr_begin()?;
                let mut first = true;
                let tuple = ($(
                    {
                        if !first { p.expect_char(',')?; }
                        first = false;
                        $t::de_json(p)?
                    },
                )+);
                let _ = first;
                p.expect_char(']')?;
                Ok(tuple)
            }
        }
    )*};
}
impl_de_tuple!((A, B)(A, B, C)(A, B, C, D));

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize>(v: &T) -> T {
        let mut s = String::new();
        v.ser_json(&mut s);
        let mut p = de::Parser::new(&s);
        let back = T::de_json(&mut p).expect("parse");
        p.finish().expect("trailing garbage");
        back
    }

    #[test]
    fn primitives_round_trip() {
        assert_eq!(round_trip(&42u32), 42);
        assert_eq!(round_trip(&-17i64), -17);
        assert!(round_trip(&true));
        assert_eq!(round_trip(&"hi \"there\"\n".to_string()), "hi \"there\"\n");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1f32, -3.25e-7, 1.0, f32::MIN, f32::MAX, 1e-40] {
            assert_eq!(round_trip(&v), v);
        }
        for v in [0.1f64, 2.0f64.powi(-1022), -1.5] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn containers_round_trip() {
        assert_eq!(round_trip(&vec![1u8, 2, 3]), vec![1, 2, 3]);
        assert_eq!(
            round_trip(&vec![(1u32, 2u32), (3, 4)]),
            vec![(1, 2), (3, 4)]
        );
        assert_eq!(round_trip(&[1.5f32, -2.5, 0.0]), [1.5, -2.5, 0.0]);
        assert_eq!(round_trip(&Some(7u16)), Some(7));
        assert_eq!(round_trip(&Option::<u16>::None), None);
        let addr: std::net::Ipv4Addr = "10.1.2.3".parse().unwrap();
        assert_eq!(round_trip(&addr), addr);
    }

    #[test]
    fn nested_vecs() {
        let v = vec![vec![1.0f32, 2.0], vec![], vec![3.0]];
        assert_eq!(round_trip(&v), v);
    }
}
