//! Offline drop-in subset of `serde_json`: `to_string`, `to_string_pretty`
//! and `from_str` over the vendored serde traits.

use serde::de::Parser;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.ser_json(&mut out);
    Ok(out)
}

/// Serializes a value to indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(prettify(&to_string(value)?))
}

/// Parses a value from JSON text, requiring full input consumption.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let value = T::de_json(&mut p).map_err(|e| Error {
        message: e.to_string(),
    })?;
    p.finish().map_err(|e| Error {
        message: e.to_string(),
    })?;
    Ok(value)
}

/// Re-indents compact JSON. Operates on the token level, so string
/// contents (which may hold braces) are left untouched.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let newline = |out: &mut String, indent: usize| {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    };
    for c in compact.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                indent += 1;
                newline(&mut out, indent);
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, indent);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_vec() {
        let v = vec![1.5f32, -2.0, 0.25];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1.5,-2.0,0.25]");
        let back: Vec<f32> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Vec<u8>>("[1,2,3] junk").is_err());
    }

    #[test]
    fn pretty_is_reparseable() {
        let v = vec![(1u32, 2u32), (3, 4)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(u32, u32)> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }
}
