//! Offline drop-in subset of `criterion`.
//!
//! Implements the benchmarking API surface the workspace's benches use —
//! groups, throughput annotation, `iter`/`iter_batched`,
//! `bench_with_input` — with a simple median-of-samples timer instead of
//! criterion's full statistical machinery. Results print as
//! `group/bench  time: <median>  thrpt: <elements/s>` lines.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benched code.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Batch sizing hint; the stub timer treats all variants identically.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for parameterized benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        // One warm-up pass, then the measured samples.
        f(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        self.report(&id.to_string(), &bencher.samples);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id.id.clone(), |b| f(b, input))
    }

    pub fn finish(self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or_default();
        let secs = median.as_secs_f64();
        let mut line = format!("{}/{id}  time: {}", self.name, format_duration(median));
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            if secs > 0.0 {
                line.push_str(&format!("  thrpt: {:.1} {unit}", count as f64 / secs));
            }
        }
        println!("{line}");
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Per-benchmark timing harness.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }

    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.samples.push(start.elapsed());
    }
}

/// Declares the benchmark-group functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(100));
            g.sample_size(3);
            g.bench_function("count", |b| {
                runs += 1;
                b.iter(|| (0..1000u64).sum::<u64>())
            });
            g.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn batched_and_with_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g2");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
