//! Offline drop-in subset of the `rayon` API.
//!
//! No network access means no real rayon, but the workspace's hot paths are
//! genuinely parallel: this crate reimplements the slice parallel-iterator
//! surface the code uses (`par_iter`, `par_chunks`, `par_chunks_mut` and the
//! `map`/`zip`/`enumerate`/`filter`/`flat_map_iter`/`reduce`/`collect`
//! adapters) on top of `std::thread::scope`, dividing work into one
//! contiguous stripe per available core.
//!
//! Two deliberate simplifications versus real rayon:
//!
//! * no work stealing — stripes are static, which is fine for the mostly
//!   uniform batches this workspace processes;
//! * nested parallelism runs sequentially — a worker thread that reaches
//!   another `par_*` call executes it inline, bounding total threads at one
//!   level of fan-out (rayon bounds this with its global pool instead).
//!
//! `ThreadPoolBuilder::num_threads(n)` + `ThreadPool::install` set a global
//! thread-count override for the duration of the closure, which is how the
//! experiment binaries pin the paper's single-core setup.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Effective parallelism for the next fan-out.
fn current_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(32)
}

fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Splits `0..total` into one stripe per thread and evaluates `eval` on
/// each stripe concurrently, preserving stripe order in the result.
fn run_striped<R: Send>(total: usize, eval: impl Fn(Range<usize>) -> R + Sync) -> Vec<R> {
    if total == 0 {
        return Vec::new();
    }
    let threads = current_threads();
    if threads <= 1 || total == 1 || in_worker() {
        return vec![eval(0..total)];
    }
    let stripes = threads.min(total);
    let per = total.div_ceil(stripes);
    let eval = &eval;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..stripes)
            .map(|i| {
                let lo = i * per;
                let hi = ((i + 1) * per).min(total);
                s.spawn(move || {
                    IN_WORKER.with(|f| f.set(true));
                    eval(lo..hi)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

/// Core of every pipeline below: how to evaluate one index stripe into a
/// buffer of produced items.
pub trait ParallelIterator: Sync + Sized {
    type Item: Send;

    /// Number of base indices driving the pipeline.
    fn pipeline_len(&self) -> usize;

    /// Evaluates the stripe `range`, appending produced items to `out`.
    fn eval_into(&self, range: Range<usize>, out: &mut Vec<Self::Item>);

    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    fn filter<F: Fn(&Self::Item) -> bool + Sync>(self, f: F) -> Filter<Self, F> {
        Filter { inner: self, f }
    }

    fn flat_map_iter<I, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(Self::Item) -> I + Sync,
    {
        FlatMapIter { inner: self, f }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        run_striped(self.pipeline_len(), |range| {
            let mut buf = Vec::new();
            self.eval_into(range, &mut buf);
            for item in buf {
                f(item);
            }
        });
    }

    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        let parts = run_striped(self.pipeline_len(), |range| {
            let mut buf = Vec::with_capacity(range.len());
            self.eval_into(range, &mut buf);
            buf
        });
        parts.into_iter().flatten().collect()
    }

    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let parts = run_striped(self.pipeline_len(), |range| {
            let mut buf = Vec::with_capacity(range.len());
            self.eval_into(range, &mut buf);
            buf.into_iter().fold(identity(), &op)
        });
        parts.into_iter().fold(identity(), &op)
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        let parts = run_striped(self.pipeline_len(), |range| {
            let mut buf = Vec::with_capacity(range.len());
            self.eval_into(range, &mut buf);
            buf
        });
        parts.into_iter().flatten().sum()
    }

    /// Pairs this pipeline with a slice of equal (or longer) length.
    fn zip<U: Sync>(self, other: &[U]) -> Zip<Self, &[U]> {
        Zip { a: self, b: other }
    }
}

/// Borrowing parallel iteration (`slice.par_iter()` / `vec.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    type Iter: ParallelIterator<Item = Self::Item>;

    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = Iter<'a, T>;

    fn par_iter(&'a self) -> Iter<'a, T> {
        Iter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = Iter<'a, T>;

    fn par_iter(&'a self) -> Iter<'a, T> {
        Iter { slice: self }
    }
}

/// Parallel chunk views over shared slices.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        Chunks {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel chunk views over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send + Sync> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

impl<T: Send + Sync> ParallelSliceMut<T> for Vec<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
        self.as_mut_slice().par_chunks_mut(chunk_size)
    }
}

pub struct Iter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;

    fn pipeline_len(&self) -> usize {
        self.slice.len()
    }

    fn eval_into(&self, range: Range<usize>, out: &mut Vec<&'a T>) {
        out.extend(self.slice[range].iter());
    }
}

pub struct Chunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];

    fn pipeline_len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn eval_into(&self, range: Range<usize>, out: &mut Vec<&'a [T]>) {
        for i in range {
            let lo = i * self.chunk_size;
            let hi = (lo + self.chunk_size).min(self.slice.len());
            out.push(&self.slice[lo..hi]);
        }
    }
}

pub struct ChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send + Sync> ChunksMut<'a, T> {
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut { inner: self }
    }

    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

pub struct EnumerateChunksMut<'a, T> {
    inner: ChunksMut<'a, T>,
}

impl<'a, T: Send + Sync> EnumerateChunksMut<'a, T> {
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
        let chunk_size = self.inner.chunk_size;
        // Materialize disjoint mutable chunk views, then stripe over them.
        let mut views: Vec<Option<&'a mut [T]>> =
            self.inner.slice.chunks_mut(chunk_size).map(Some).collect();
        let total = views.len();
        let cell = ViewCell(std::cell::UnsafeCell::new(&mut views));
        let cell = &cell;
        run_striped(total, |range| {
            for i in range {
                // SAFETY: stripes are disjoint index ranges, so each Option
                // slot is taken by exactly one worker; the views themselves
                // are disjoint subslices produced by `chunks_mut`.
                let chunk = unsafe { cell.take(i) };
                f((i, chunk));
            }
        });
    }
}

/// Shared-access wrapper for the chunk-view table; safe because workers
/// touch disjoint indices (see the SAFETY note at the use site).
struct ViewCell<'v, 'a, T>(std::cell::UnsafeCell<&'v mut Vec<Option<&'a mut [T]>>>);

impl<'a, T> ViewCell<'_, 'a, T> {
    /// # Safety
    /// Each index must be taken by at most one thread.
    unsafe fn take(&self, i: usize) -> &'a mut [T] {
        let views: &mut Vec<Option<&'a mut [T]>> = &mut **self.0.get();
        views[i].take().expect("chunk taken twice")
    }
}

unsafe impl<T: Send + Sync> Sync for ViewCell<'_, '_, T> {}

pub struct Map<P, F> {
    inner: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;

    fn pipeline_len(&self) -> usize {
        self.inner.pipeline_len()
    }

    fn eval_into(&self, range: Range<usize>, out: &mut Vec<R>) {
        let mut buf = Vec::with_capacity(range.len());
        self.inner.eval_into(range, &mut buf);
        out.extend(buf.into_iter().map(&self.f));
    }
}

pub struct Filter<P, F> {
    inner: P,
    f: F,
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Sync,
{
    type Item = P::Item;

    fn pipeline_len(&self) -> usize {
        self.inner.pipeline_len()
    }

    fn eval_into(&self, range: Range<usize>, out: &mut Vec<P::Item>) {
        let mut buf = Vec::with_capacity(range.len());
        self.inner.eval_into(range, &mut buf);
        out.extend(buf.into_iter().filter(|item| (self.f)(item)));
    }
}

pub struct FlatMapIter<P, F> {
    inner: P,
    f: F,
}

impl<P, I, F> ParallelIterator for FlatMapIter<P, F>
where
    P: ParallelIterator,
    I: IntoIterator,
    I::Item: Send,
    F: Fn(P::Item) -> I + Sync,
{
    type Item = I::Item;

    fn pipeline_len(&self) -> usize {
        self.inner.pipeline_len()
    }

    fn eval_into(&self, range: Range<usize>, out: &mut Vec<I::Item>) {
        let mut buf = Vec::with_capacity(range.len());
        self.inner.eval_into(range, &mut buf);
        for item in buf {
            out.extend((self.f)(item));
        }
    }
}

pub struct Enumerate<P> {
    inner: P,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);

    fn pipeline_len(&self) -> usize {
        self.inner.pipeline_len()
    }

    fn eval_into(&self, range: Range<usize>, out: &mut Vec<(usize, P::Item)>) {
        let start = range.start;
        let mut buf = Vec::with_capacity(range.len());
        self.inner.eval_into(range, &mut buf);
        out.extend(
            buf.into_iter()
                .enumerate()
                .map(|(i, item)| (start + i, item)),
        );
    }
}

pub struct Zip<P, S> {
    a: P,
    b: S,
}

impl<'b, P, U> ParallelIterator for Zip<P, &'b [U]>
where
    P: ParallelIterator,
    U: Sync,
{
    type Item = (P::Item, &'b U);

    fn pipeline_len(&self) -> usize {
        self.a.pipeline_len().min(self.b.len())
    }

    fn eval_into(&self, range: Range<usize>, out: &mut Vec<(P::Item, &'b U)>) {
        let bs = &self.b[range.clone()];
        let mut buf = Vec::with_capacity(range.len());
        self.a.eval_into(range, &mut buf);
        out.extend(buf.into_iter().zip(bs.iter()));
    }
}

/// Number of threads the current scope's `par_*` calls will fan out to —
/// the installed pool's size inside `ThreadPool::install`, the default
/// parallelism otherwise. Mirrors `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    current_threads()
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type kept for API compatibility; building never fails here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` means "use the default parallelism", as in rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped thread-count override rather than a real pool: `install` pins
/// the fan-out width of every `par_*` call made inside the closure.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = THREAD_OVERRIDE.swap(self.num_threads, Ordering::Relaxed);
        let result = op();
        THREAD_OVERRIDE.store(prev, Ordering::Relaxed);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_collect() {
        let v: Vec<u32> = (0..1000).collect();
        let odds: Vec<u32> = v.par_iter().filter(|&&x| x % 2 == 1).map(|&x| x).collect();
        assert_eq!(odds.len(), 500);
        assert!(odds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn zip_map_and_reduce() {
        let a: Vec<u64> = (0..500).collect();
        let b: Vec<u64> = (0..500).rev().collect();
        let dot = a
            .par_iter()
            .zip(&b)
            .map(|(&x, &y)| x * y)
            .reduce(|| 0, |p, q| p + q);
        let expect: u64 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        assert_eq!(dot, expect);
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let v = vec![1usize, 2, 3];
        let out: Vec<usize> = v.par_iter().flat_map_iter(|&n| 0..n).collect();
        assert_eq!(out, vec![0, 0, 1, 0, 1, 2]);
    }

    #[test]
    fn chunks_mut_disjoint_writes() {
        let mut data = vec![0u32; 1003];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 10) as u32);
        }
    }

    #[test]
    fn par_chunks_shared() {
        let data: Vec<u32> = (0..95).collect();
        let sums: Vec<u32> = data.par_chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 10);
        assert_eq!(sums.iter().sum::<u32>(), data.iter().sum::<u32>());
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<u32> = pool.install(|| {
            (0..100)
                .collect::<Vec<u32>>()
                .par_iter()
                .map(|&x| x)
                .collect()
        });
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn nested_parallelism_does_not_explode() {
        let outer: Vec<u32> = (0..64).collect();
        let total: u32 = outer
            .par_iter()
            .map(|&x| {
                let inner: Vec<u32> = (0..64).collect();
                inner.par_iter().map(|&y| x + y).reduce(|| 0, |a, b| a + b)
            })
            .reduce(|| 0, |a, b| a + b);
        let expect: u32 = (0..64u32)
            .map(|x| (0..64u32).map(|y| x + y).sum::<u32>())
            .sum();
        assert_eq!(total, expect);
    }
}
