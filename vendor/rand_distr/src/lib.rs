//! Offline drop-in subset of `rand_distr`: the `Distribution` trait plus
//! the `Exp` and `LogNormal` distributions used by the traffic generator.

use rand::{Rng, RngCore, Standard};

/// Sampling interface, mirroring `rand_distr::Distribution`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error from an invalid distribution parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(Error("Exp: lambda must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF transform; 1 - u in (0, 1] keeps ln() finite.
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / self.lambda
    }
}

/// Log-normal distribution: exp(N(mu, sigma²)).
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if sigma >= 0.0 && sigma.is_finite() && mu.is_finite() {
            Ok(LogNormal { mu, sigma })
        } else {
            Err(Error("LogNormal: sigma must be non-negative and finite"))
        }
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; uses one of the two produced normals.
        let u1: f64 = loop {
            let u = <f64 as Standard>::sample_standard(rng);
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_mean_close_to_inverse_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Exp::new(4.0).unwrap();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn lognormal_median_close_to_exp_mu() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = LogNormal::new(2.0, 0.5).unwrap();
        let mut samples: Vec<f64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[10_000];
        assert!((median - 2.0f64.exp()).abs() < 0.5, "median = {median}");
        assert!(samples.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
    }
}
