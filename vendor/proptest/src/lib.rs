//! Offline drop-in subset of `proptest`.
//!
//! Provides the strategy combinators and the `proptest!` macro surface the
//! workspace's property tests use: numeric range strategies, `any`,
//! tuples, `Just`, `prop_map`, `prop_filter`, `prop_oneof!`,
//! `prop::collection::vec` and `ProptestConfig::with_cases`.
//!
//! Deliberate simplification versus real proptest: no shrinking — a failing
//! case panics with the standard assertion message. Generation is
//! deterministic per test (seeded from the test name), so failures
//! reproduce across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator used by all strategies.
pub type TestRng = StdRng;

/// Builds the per-test RNG; seeded by test name so every test draws an
/// independent, reproducible stream.
pub fn test_rng(test_name: &str) -> TestRng {
    let seed = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    });
    StdRng::seed_from_u64(seed)
}

/// Runner configuration (`cases` = iterations per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<R, F: Fn(Self::Value) -> R>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            reason: reason.into(),
        }
    }
}

/// Object-safe strategy view used by `prop_oneof!`.
pub trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Uniform choice between boxed strategies of one value type.
pub struct Union<V> {
    options: Vec<Box<dyn DynStrategy<V>>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<Box<dyn DynStrategy<V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate_dyn(rng)
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, R, F: Fn(S::Value) -> R> Strategy for Map<S, F> {
    type Value = R;

    fn generate(&self, rng: &mut TestRng) -> R {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: String,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 candidates: {}", self.reason);
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Uniform values over a type's whole domain (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple!(
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10, L 11)
);

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::DynStrategy<_>>),+
        ])
    };
}

/// The property-test runner macro. Each enclosed `fn` becomes a `#[test]`
/// (the attribute is written by the caller, as with real proptest) that
/// evaluates its body `config.cases` times over freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_hold(x in 3u32..17, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_sizes_hold(v in prop::collection::vec(0u8..255, 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
        }

        #[test]
        fn map_and_filter(v in (0u32..100).prop_map(|x| x * 2).prop_filter("even", |x| x % 4 == 0)) {
            prop_assert_eq!(v % 4, 0);
            prop_assert!(v < 200);
        }

        #[test]
        fn oneof_selects_all_options(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!([1u8, 2, 5, 6].contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_applies(_x in 0u8..10) {
            // Body runs exactly `cases` times; nothing to assert per-case.
        }
    }

    #[test]
    fn deterministic_streams() {
        use super::Strategy;
        let s = 0u64..1_000_000;
        let mut a = super::test_rng("t");
        let mut b = super::test_rng("t");
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
