//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of `rand` it actually uses: `Rng` (`gen`, `gen_range`,
//! `gen_bool`, `fill`), `SeedableRng::seed_from_u64`, `rngs::StdRng`,
//! `rngs::mock::StepRng` and `seq::SliceRandom::shuffle`. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid for
//! simulation and testing, not cryptographic, and its streams do not match
//! upstream `rand` bit-for-bit (nothing in-tree depends on that).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Values producible uniformly from raw generator output (`rng.gen()`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Element types [`Rng::gen_range`] can sample uniformly. The generic
/// `SampleRange` impls below route through this trait so integer-literal
/// inference works exactly as with real rand (`gen_range(0..2)` as a slice
/// index infers `usize`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "empty range in gen_range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// User-facing random-value methods, blanket-implemented for every core
/// generator.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample_standard(self) < p
    }

    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for v in &mut s {
                *v = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 never yields
            // four zeros from any seed, but keep the guard explicit.
            if s == [0; 4] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    pub mod mock {
        use crate::RngCore;

        /// Arithmetic-sequence generator for deterministic unit tests.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            current: u64,
            step: u64,
        }

        impl StepRng {
            pub fn new(initial: u64, step: u64) -> Self {
                StepRng {
                    current: initial,
                    step,
                }
            }
        }

        impl RngCore for StepRng {
            #[inline]
            fn next_u64(&mut self) -> u64 {
                let v = self.current;
                self.current = self.current.wrapping_add(self.step);
                v
            }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// In-place slice randomization (Fisher–Yates).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u16 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f32 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i: u8 = rng.gen_range(0..=14);
            assert!(i <= 14);
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((3800..6200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn uniform_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn fill_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
