//! Umbrella crate for the CLAP reproduction workspace.
//!
//! Re-exports every member crate under one dependency so the examples and
//! integration tests at the repository root — and downstream users who
//! want the whole system — can depend on a single crate:
//!
//! ```
//! use clap_repro::clap_core::{Clap, ClapConfig};
//!
//! let benign = clap_repro::traffic_gen::dataset(42, 40);
//! let (detector, _summary) = Clap::train(&benign, &ClapConfig::ci());
//! let scored = detector.score_connection(&benign[0]);
//! assert!(scored.score.is_finite());
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! paper → module mapping (and documented deviations), and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub use baselines;
pub use clap_core;
pub use dpi_attacks;
pub use net_packet;
pub use neural;
pub use tcp_state;
pub use traffic_gen;
